"""ParallelRunner: ordering, determinism, fallbacks, and sweep identity."""

import pytest

from repro.experiments.sweep import SweepItem, evaluate_sweep_item, run_sweep
from repro.runtime import ParallelRunner, available_cpus, fork_available
from repro.runtime.parallel import _run_chunk


def _square(x):
    return x * x


def _flaky(x):
    if x == 3:
        raise ValueError("boom")
    return x


class TestParallelRunnerMechanics:
    def test_serial_map(self):
        assert ParallelRunner(max_workers=1).map(_square, [3, -1, 0]) == [9, 1, 0]

    def test_empty_items(self):
        assert ParallelRunner(max_workers=4).map(_square, []) == []

    def test_parallel_map_preserves_order(self):
        runner = ParallelRunner(max_workers=4, chunk_size=2)
        items = list(range(17))
        assert runner.map(_square, items) == [x * x for x in items]

    def test_parallel_matches_serial(self):
        items = list(range(40))
        serial = ParallelRunner(max_workers=1).map(_square, items)
        parallel = ParallelRunner(max_workers=4).map(_square, items)
        assert serial == parallel

    def test_unpicklable_function_falls_back_in_process(self):
        runner = ParallelRunner(max_workers=4)
        doubled = runner.map(lambda x: 2 * x, [1, 2, 3])
        assert doubled == [2, 4, 6]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            ParallelRunner(max_workers=1).map(_flaky, [1, 2, 3])
        if fork_available():
            with pytest.raises(ValueError, match="boom"):
                ParallelRunner(max_workers=2, chunk_size=1).map(_flaky, [1, 2, 3])

    def test_chunking_covers_every_item_exactly_once(self):
        runner = ParallelRunner(max_workers=3, chunk_size=4)
        chunks = runner._chunks(list(range(10)))
        flattened = [x for chunk in chunks for x in chunk]
        assert flattened == list(range(10))
        assert all(len(chunk) <= 4 for chunk in chunks)

    def test_run_chunk_helper(self):
        assert _run_chunk(_square, [2, 5]) == [4, 25]

    def test_chunks_sized_from_effective_workers(self, monkeypatch):
        # Regression: on an affinity-restricted host (2 usable cpus under
        # max_workers=16) auto-chunking must target the 2-process pool
        # map() actually builds, not 16 * 4 = 64 slivers.
        import repro.runtime.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "available_cpus", lambda: 2)
        runner = ParallelRunner(max_workers=16)
        work = list(range(64))
        chunks = runner._chunks(work, min(runner.max_workers, 2))
        assert len(chunks) == 8  # 64 items / (2 workers * 4)
        assert [x for chunk in chunks for x in chunk] == work
        # The default path (workers=None) recomputes the same cap itself.
        assert len(runner._chunks(work)) == 8

    def test_chunks_default_matches_map_computation(self, monkeypatch):
        # Unrestricted hosts keep the old sizing: max_workers binds.
        import repro.runtime.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "available_cpus", lambda: 64)
        runner = ParallelRunner(max_workers=4)
        chunks = runner._chunks(list(range(32)))
        assert len(chunks) == 16  # 32 items / (4 workers * 4) = size 2

    def test_available_cpus_positive(self):
        assert available_cpus() >= 1


class TestMinWorkThreshold:
    """Tiny sweeps skip the pool; results stay identical either way."""

    def test_default_threshold_enabled(self):
        assert ParallelRunner().serial_threshold_seconds == 0.5

    def test_cheap_items_fall_back_to_serial(self, monkeypatch):
        # Sub-millisecond items never amortise a pool; if the pool were
        # still consulted this would explode via the patched executor.
        import repro.runtime.parallel as parallel_module

        def _boom(*args, **kwargs):
            raise AssertionError("pool must not start for tiny work")

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", _boom)
        runner = ParallelRunner(max_workers=4)
        items = list(range(50))
        assert runner.map(_square, items) == [x * x for x in items]

    def test_zero_threshold_forces_pool_with_identical_results(self):
        items = list(range(30))
        eager = ParallelRunner(max_workers=4, serial_threshold_seconds=0.0)
        assert eager.map(_square, items) == [x * x for x in items]

    def test_threshold_fallback_preserves_order(self):
        runner = ParallelRunner(max_workers=4, serial_threshold_seconds=60.0)
        items = list(range(23))
        assert runner.map(_square, items) == [x * x for x in items]

    def test_single_cpu_stays_in_process(self, monkeypatch):
        # On a one-core box the pool can only add cost, whatever the
        # projected work; the runner must not even probe the first item
        # through the pool path.
        import repro.runtime.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "available_cpus", lambda: 1)

        def _boom(*args, **kwargs):
            raise AssertionError("pool must not start on a single-core box")

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", _boom)
        runner = ParallelRunner(max_workers=8, serial_threshold_seconds=0.0)
        items = list(range(40))
        assert runner.map(_square, items) == [x * x for x in items]


class TestSweepDeterminism:
    # Deterministic OPT/OR bounds: record identity must not depend on wall
    # clock (see run_sweep's docstring).
    KWARGS = dict(
        instances_per_size=8,
        base_seed=9,
        opt_budget=30.0,
        or_budget=10.0,
        opt_node_budget=300,
        or_node_budget=200,
    )

    def test_parallel_records_identical_to_serial(self):
        serial = run_sweep([10, 12], **self.KWARGS)
        parallel = run_sweep([10, 12], max_workers=4, **self.KWARGS)
        assert serial == parallel

    def test_rerun_is_reproducible(self):
        first = run_sweep([10], **self.KWARGS)
        second = run_sweep([10], **self.KWARGS)
        assert first == second

    def test_item_evaluation_matches_inline_sweep(self):
        records = run_sweep([10], **self.KWARGS)
        item = SweepItem(
            switch_count=10,
            seed=records[0].seed,
            schemes=("chronus", "or", "opt"),
            opt_budget=30.0,
            or_budget=10.0,
            opt_node_budget=300,
            or_node_budget=200,
        )
        assert evaluate_sweep_item(item) == records[0]
