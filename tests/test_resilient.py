"""The resilient executor: fault-free parity, retries, rollback, hygiene.

The load-bearing property is the differential one: with faults disabled the
resilient executor must produce a byte-identical
:class:`~repro.controller.executor.ExecutionTrace` to the plain executors --
same planned times, same applied times, same finish instant -- because it
sends exactly the same messages in the same order (so every latency draw
lands on the same message).  Everything else here exercises what the plain
executors cannot survive: lost messages, duplicate deliveries, failed
installs, crash-stop switches and deadlines.
"""

import random

import pytest

from repro.controller import (
    ConstantDelayModel,
    ControlChannel,
    Controller,
    DionysusDelayModel,
    UniformDelayModel,
    perform_resilient_two_phase,
    perform_resilient_update,
    perform_round_update,
    perform_timed_update,
)
from repro.core.greedy import greedy_schedule
from repro.core.instance import motivating_example
from repro.experiments.sweep import mixed_instance
from repro.faults import FaultPlan, FaultSpec, FaultyChannel
from repro.simulator import Simulator, build_dataplane
from repro.simulator.dataplane import install_config


def make_world(seed, instance=None, spec=None, network_delay=None, install_delay=None):
    """One simulated world; a benign world and a faulted world with the
    same seed draw identical latencies for identical send sequences."""
    instance = instance or motivating_example()
    sim = Simulator()
    plane = build_dataplane(sim, instance.network, delay_scale=1.0)
    install_config(plane, instance)
    network_delay = network_delay or UniformDelayModel(0.01, 0.5)
    install_delay = install_delay or DionysusDelayModel(median=0.1, sigma=1.0, cap=1.0)
    if spec is None:
        channel = ControlChannel(
            sim, network_delay=network_delay, install_delay=install_delay,
            rng=random.Random(seed),
        )
        plan = None
    else:
        plan = FaultPlan(spec, seed=seed)
        channel = FaultyChannel(
            sim, plan, network_delay=network_delay, install_delay=install_delay,
            rng=random.Random(seed),
        )
    controller = Controller(sim, channel)
    for switch in plane.switches.values():
        controller.manage(switch)
    if plan is not None:
        plan.wire(controller)
    plane.inject_flow(instance.source, "h1", str(instance.destination), rate=1.0)
    return instance, sim, plane, controller


def trace_fingerprint(trace):
    return (dict(trace.planned), dict(trace.applied), trace.finished_at)


def rule_of(plane, node, name):
    return next(rule for rule in plane.switch(node).table.rules if rule.name == name)


class TestFaultFreeParity:
    """Differential test: resilient == plain executors, byte for byte."""

    @pytest.mark.parametrize("seed", range(5))
    def test_rounds_trace_identical(self, seed):
        instance, sim, plane, controller = make_world(seed)
        schedule = greedy_schedule(instance).schedule
        plain = perform_round_update(controller, plane, instance, schedule, time_unit=1.0)
        sim.run(until=120.0)

        instance2, sim2, plane2, controller2 = make_world(seed)
        resilient = perform_resilient_update(
            controller2, plane2, instance2, schedule, strategy="rounds", time_unit=1.0
        )
        sim2.run(until=120.0)

        assert trace_fingerprint(resilient) == trace_fingerprint(plain)
        assert not resilient.aborted
        assert resilient.total_retries == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_timed_trace_identical(self, seed):
        instance, sim, plane, controller = make_world(seed)
        schedule = greedy_schedule(instance).schedule
        plain = perform_timed_update(
            controller, plane, instance, schedule, time_unit=1.0, start_at=5.0
        )
        sim.run(until=120.0)

        instance2, sim2, plane2, controller2 = make_world(seed)
        resilient = perform_resilient_update(
            controller2, plane2, instance2, schedule,
            strategy="timed", time_unit=1.0, start_at=5.0,
        )
        sim2.run(until=120.0)

        assert trace_fingerprint(resilient) == trace_fingerprint(plain)
        assert resilient.late == plain.late == {}

    @pytest.mark.parametrize("seed", [0, 3])
    def test_parity_on_sweep_instances(self, seed):
        instance = mixed_instance(8, 1000 + seed)
        _, sim, plane, controller = make_world(seed, instance=instance)
        schedule = greedy_schedule(instance).schedule
        plain = perform_round_update(controller, plane, instance, schedule, time_unit=1.0)
        sim.run(until=200.0)

        _, sim2, plane2, controller2 = make_world(seed, instance=instance)
        resilient = perform_resilient_update(
            controller2, plane2, instance, schedule, strategy="rounds", time_unit=1.0
        )
        sim2.run(until=200.0)
        assert trace_fingerprint(resilient) == trace_fingerprint(plain)


class TestRetries:
    def test_recovers_from_message_loss(self):
        completed = 0
        for seed in range(10):
            spec = FaultSpec(drop_rate=0.25, duplicate_rate=0.15)
            instance, sim, plane, controller = make_world(seed, spec=spec)
            schedule = greedy_schedule(instance).schedule
            trace = perform_resilient_update(
                controller, plane, instance, schedule,
                strategy="rounds", time_unit=1.0, retry_timeout=4.0, max_retries=4,
            )
            sim.run(until=400.0)
            assert trace.finished_at is not None  # finished or aborted, never hung
            # Barrier-waiter hygiene: nothing leaks even when replies drop.
            assert controller.pending_barriers() == 0
            if not trace.aborted:
                completed += 1
                assert set(trace.applied) == set(schedule.times)
        assert completed >= 8  # retries recover the overwhelming majority

    def test_duplicate_deliveries_are_idempotent(self):
        spec = FaultSpec(duplicate_rate=1.0)
        instance, sim, plane, controller = make_world(0, spec=spec)
        schedule = greedy_schedule(instance).schedule
        trace = perform_resilient_update(
            controller, plane, instance, schedule, strategy="rounds", time_unit=1.0
        )
        sim.run(until=200.0)
        assert not trace.aborted
        assert trace.total_retries == 0  # every first copy was acknowledged
        assert set(trace.applied) == set(schedule.times)
        for node in schedule.times:
            port = plane.port_of(node, instance.new_config[node])
            assert rule_of(plane, node, instance.flow.name).out_port == port
        assert controller.pending_barriers() == 0

    def test_apply_failure_triggers_resend(self):
        class FailFirst:
            def __init__(self):
                self.calls = 0

            def crashed(self, now):
                return False

            def apply_fails(self):
                self.calls += 1
                return self.calls == 1

            def stretch_install(self, latency):
                return latency

        instance, sim, plane, controller = make_world(0)
        schedule = greedy_schedule(instance).schedule
        victim = next(iter(schedule.times))
        controller.managed(victim).faults = FailFirst()
        trace = perform_resilient_update(
            controller, plane, instance, schedule,
            strategy="rounds", time_unit=1.0, retry_timeout=2.0,
        )
        sim.run(until=200.0)
        assert not trace.aborted
        assert trace.retries.get(victim, 0) >= 1
        assert victim in trace.applied


class TestAbortAndRollback:
    class CrashAt:
        def __init__(self, at):
            self.at = at

        def crashed(self, now):
            return now >= self.at

        def apply_fails(self):
            return False

        def stretch_install(self, latency):
            return latency

    def test_crash_stop_aborts_and_rolls_back(self):
        instance, sim, plane, controller = make_world(
            0, network_delay=ConstantDelayModel(0.01),
            install_delay=ConstantDelayModel(0.05),
        )
        schedule = greedy_schedule(instance).schedule
        rounds = schedule.rounds()
        victim = next(iter(rounds[-1][1]))  # last round: earlier rounds apply first
        controller.managed(victim).faults = self.CrashAt(0.0)
        trace = perform_resilient_update(
            controller, plane, instance, schedule,
            strategy="rounds", time_unit=1.0, retry_timeout=2.0, max_retries=2,
        )
        sim.run(until=300.0)
        assert trace.aborted
        assert victim in trace.gave_up
        assert trace.rolled_back  # every switch updated before the crash
        sim.run(until=sim.now + 20.0)  # let rollback messages land
        for node in trace.rolled_back:
            if node == victim:
                continue  # a crashed switch processes nothing, including rollback
            rule = rule_of(plane, node, instance.flow.name)
            assert rule.out_port == plane.port_of(node, instance.old_config[node])
        # Waiter hygiene even though the crashed switch never replied.
        assert controller.pending_barriers() == 0

    def test_rollback_is_newest_first(self):
        instance, sim, plane, controller = make_world(
            0, network_delay=ConstantDelayModel(0.01),
            install_delay=ConstantDelayModel(0.05),
        )
        schedule = greedy_schedule(instance).schedule
        rounds = schedule.rounds()
        assert len(rounds) >= 2
        victim = next(iter(rounds[-1][1]))
        controller.managed(victim).faults = self.CrashAt(0.0)
        trace = perform_resilient_update(
            controller, plane, instance, schedule,
            strategy="rounds", time_unit=1.0, retry_timeout=2.0, max_retries=1,
        )
        sim.run(until=300.0)
        assert trace.aborted
        # Touched-but-unconfirmed switches (the crashed one) are rolled back
        # too -- their FlowMod may still be in flight; among the *applied*
        # ones the unwind must run newest-first.
        confirmed = [n for n in trace.rolled_back if n in trace.applied]
        assert confirmed == sorted(
            confirmed, key=lambda n: trace.applied[n], reverse=True
        )
        assert len(confirmed) >= 2

    def test_deadline_abort_under_heavy_loss(self):
        spec = FaultSpec(drop_rate=0.9)
        instance, sim, plane, controller = make_world(3, spec=spec)
        schedule = greedy_schedule(instance).schedule
        trace = perform_resilient_update(
            controller, plane, instance, schedule,
            strategy="timed", time_unit=1.0, start_at=5.0,
            retry_timeout=3.0, max_retries=10, deadline=20.0,
        )
        sim.run(until=100.0)
        assert trace.aborted
        assert "deadline" in trace.abort_reason
        assert trace.finished_at == pytest.approx(20.0)
        assert controller.pending_barriers() == 0


class TestResilientTwoPhase:
    def test_fault_free_flip_lands_on_time(self):
        instance, sim, plane, controller = make_world(
            0, network_delay=ConstantDelayModel(0.01),
            install_delay=ConstantDelayModel(0.05),
        )
        trace = perform_resilient_two_phase(controller, plane, instance, flip_at=8.0)
        sim.run(until=60.0)
        assert not trace.aborted
        assert trace.applied[instance.source] == pytest.approx(8.0)
        ingress = rule_of(plane, instance.source, instance.flow.name)
        assert ingress.set_tag == 2
        assert controller.pending_barriers() == 0

    def test_abort_unflips_and_deletes_shadow_rules(self):
        class CrashAt:
            def __init__(self, at):
                self.at = at

            def crashed(self, now):
                return now >= self.at

            def apply_fails(self):
                return False

            def stretch_install(self, latency):
                return latency

        instance, sim, plane, controller = make_world(
            0, network_delay=ConstantDelayModel(0.01),
            install_delay=ConstantDelayModel(0.05),
        )
        victims = [n for n in instance.new_config if n != instance.source]
        victim = victims[0]
        controller.managed(victim).faults = CrashAt(0.0)
        trace = perform_resilient_two_phase(
            controller, plane, instance, flip_at=8.0,
            retry_timeout=2.0, max_retries=2,
        )
        sim.run(until=300.0)
        assert trace.aborted
        assert victim in trace.gave_up
        sim.run(until=sim.now + 20.0)
        shadow = f"{instance.flow.name}#v2"
        for node in trace.rolled_back:
            if node == victim:
                continue
            assert shadow not in plane.switch(node).table
        ingress = rule_of(plane, instance.source, instance.flow.name)
        assert ingress.set_tag is None
        assert ingress.out_port == plane.port_of(
            instance.source, instance.old_config[instance.source]
        )
        assert controller.pending_barriers() == 0
