"""The trace layer: ids, sinks, pool-worker merge, query CLI.

The hard guarantees under test:

* run ids never collide (same second, same process) and sort in
  creation order -- fixed-width pid and sequence fields;
* manifests and trace records carry timezone-aware UTC timestamps;
* a JSONL sink and a SQLite sink round-trip identical records;
* a pool run's trace is record-for-record identical to the serial run's
  in its :meth:`TraceRecord.stable_view` projection, and its perf
  spans/counters merge back into the parent registry (nothing is
  silently dropped with ``REPRO_PERF=1`` under the pool);
* tracing is observability-only: records gain exactly the ``trace``
  link field and nothing else, and stay untouched with sinks off.
"""

import json
import re
from datetime import datetime, timedelta

import pytest

import repro.pipeline.store as store_mod
import repro.runtime.parallel as parallel_mod
from repro.perf import perf
from repro.pipeline.context import RunContext
from repro.pipeline.runner import run_in_memory, run_to_store
from repro.pipeline.store import ArtifactStore, new_run_id
from repro.trace.__main__ import main as trace_cli
from repro.trace.query import TraceQueryError, default_trace_path, read_trace
from repro.trace.record import (
    TraceRecord,
    derive_span_id,
    derive_trace_id,
    utc_now_iso,
)
from repro.trace.recorder import recorder
from repro.trace.sinks import JsonlSink, SqliteSink, open_sink

TINY_FIG9 = {"switch_counts": [20], "instances_per_size": 4}


@pytest.fixture(autouse=True)
def _clean_global_state():
    """Every test starts and ends with idle perf/trace registries."""
    perf.disable()
    perf.reset()
    recorder.deactivate()
    yield
    perf.disable()
    perf.reset()
    recorder.deactivate()


@pytest.fixture
def two_cpus(monkeypatch):
    """Lift the CPU cap so the pool forks on single-core CI boxes too."""
    monkeypatch.setattr(parallel_mod, "available_cpus", lambda: 2)


def pool_ctx(**kwargs) -> RunContext:
    return RunContext(workers=2, serial_threshold_seconds=0, **kwargs)


# --- run ids (satellite: same-second collision, sortable width) --------

def test_run_id_shape():
    assert re.fullmatch(r"\d{8}T\d{6}-\d{8}-\d{6}", new_run_id())


def test_run_ids_unique_within_one_second(monkeypatch):
    monkeypatch.setattr(store_mod.time, "gmtime", lambda: (2026, 1, 2, 3, 4, 5, 0, 0, 0))
    ids = [new_run_id() for _ in range(50)]
    assert len(set(ids)) == 50
    assert ids == sorted(ids)  # lexicographic order == creation order


def test_same_second_runs_do_not_collide_in_store(tmp_path, monkeypatch):
    monkeypatch.setattr(store_mod.time, "gmtime", lambda: (2026, 1, 2, 3, 4, 5, 0, 0, 0))
    store = ArtifactStore(root=tmp_path)
    first = store.create("fig9", {"x": 1})
    second = store.create("fig9", {"x": 1})  # used to raise StoreError
    assert first.run_id != second.run_id
    assert store.latest_run_id("fig9") == second.run_id


def test_run_id_pid_width_sorts_correctly(tmp_path, monkeypatch):
    """Regression: variable-width ``-99`` sorted after ``-100``."""
    monkeypatch.setattr(store_mod.time, "gmtime", lambda: (2026, 1, 2, 3, 4, 5, 0, 0, 0))
    store = ArtifactStore(root=tmp_path)
    monkeypatch.setattr(store_mod.os, "getpid", lambda: 99)
    older = store.create("fig9", {})
    monkeypatch.setattr(store_mod.os, "getpid", lambda: 100)
    newer = store.create("fig9", {})
    assert store.run_ids("fig9") == [older.run_id, newer.run_id]
    assert store.latest_run_id("fig9") == newer.run_id


# --- UTC timestamps (satellite) ----------------------------------------

def _assert_utc(stamp: str) -> None:
    parsed = datetime.fromisoformat(stamp)
    assert parsed.tzinfo is not None, f"naive timestamp: {stamp!r}"
    assert parsed.utcoffset() == timedelta(0)


def test_manifest_timestamps_are_utc(tmp_path):
    store = ArtifactStore(root=tmp_path)
    handle = store.create("fig9", {"x": 1})
    _assert_utc(handle.manifest["created_at"])
    handle.finish(status="complete", records=0)
    _assert_utc(handle.manifest["finished_at"])


def test_trace_timestamps_are_utc():
    _assert_utc(utc_now_iso())


# --- record schema and derived ids ------------------------------------

def test_derived_ids_are_deterministic():
    assert derive_trace_id("fig9", "r1") == derive_trace_id("fig9", "r1")
    assert derive_trace_id("fig9", "r1") != derive_trace_id("fig9", "r2")
    assert len(derive_trace_id("fig9", "r1")) == 32
    span = derive_span_id("t" * 32, None, "run", 0)
    assert span == derive_span_id("t" * 32, None, "run", 0)
    assert span != derive_span_id("t" * 32, None, "run", 1)
    assert len(span) == 16


def test_stable_view_drops_only_volatile_fields():
    record = TraceRecord(
        kind="span",
        trace_id="t" * 32,
        span_id="s" * 16,
        parent_id=None,
        name="item:x",
        scenario="fig9",
        start_time=utc_now_iso(),
        end_time=utc_now_iso(),
        duration_ms=1.5,
        attributes={"pid": 123, "seconds": 0.1, "key": "x", "calls": 2},
    )
    view = record.stable_view()
    assert "start_time" not in view and "duration_ms" not in view
    assert view["attributes"] == {"key": "x", "calls": 2}
    assert view["span_id"] == "s" * 16


# --- sinks (satellite: JSONL round-trips identically to SQLite) --------

def _sample_records():
    trace_id = derive_trace_id("fig9", "r1")
    root = derive_span_id(trace_id, None, "run", 0)
    return [
        TraceRecord(
            kind="span",
            trace_id=trace_id,
            span_id=root,
            parent_id=None,
            name="run",
            scenario="fig9",
            start_time=utc_now_iso(),
            end_time=utc_now_iso(),
            duration_ms=12.25,
            attributes={"run_id": "r1"},
        ),
        TraceRecord(
            kind="event",
            trace_id=trace_id,
            span_id=derive_span_id(trace_id, root, "event:apply", 0),
            parent_id=root,
            name="apply",
            scenario="fig9",
            start_time=utc_now_iso(),
            attributes={"switch": "s3", "planned": 5.5, "applied": 5.6},
        ),
    ]


def test_jsonl_and_sqlite_sinks_round_trip_identically(tmp_path):
    records = _sample_records()
    jsonl = JsonlSink(tmp_path / "trace.jsonl")
    sqlite = SqliteSink(tmp_path / "trace.db")
    for record in records:
        jsonl.emit(record)
        sqlite.emit(record)
    jsonl.close()
    sqlite.close()
    from_jsonl = read_trace(tmp_path / "trace.jsonl")
    from_sqlite = read_trace(tmp_path / "trace.db")
    assert from_jsonl == records
    assert from_sqlite == records


def test_open_sink_specs(tmp_path):
    assert isinstance(open_sink("jsonl", directory=tmp_path), JsonlSink)
    assert isinstance(open_sink("sqlite", directory=tmp_path), SqliteSink)
    explicit = open_sink(f"jsonl:{tmp_path / 'custom.jsonl'}")
    assert explicit.path == tmp_path / "custom.jsonl"
    with pytest.raises(ValueError):
        open_sink("kafka", directory=tmp_path)


# --- serial vs pool lockstep (tentpole) --------------------------------

def _traced_run(tmp_path, label, ctx):
    store = ArtifactStore(root=tmp_path / label)
    stored = run_to_store(
        "fig9", overrides=TINY_FIG9, ctx=ctx, store=store, run_id="r1"
    )
    trace_path = stored.handle.directory / "trace.jsonl"
    return stored, read_trace(trace_path)


def test_serial_and_pool_traces_are_lockstep(tmp_path, two_cpus):
    serial_stored, serial_trace = _traced_run(
        tmp_path, "serial", RunContext(trace="jsonl")
    )
    pool_stored, pool_trace = _traced_run(tmp_path, "pool", pool_ctx(trace="jsonl"))

    assert [r.stable_view() for r in serial_trace] == [
        r.stable_view() for r in pool_trace
    ]
    # The pipeline records themselves (trace links included, since the
    # run ids match) are byte-identical between serial and pool.
    assert (
        serial_stored.handle.records_path.read_bytes()
        == pool_stored.handle.records_path.read_bytes()
    )
    # The pool run really pooled: item spans from more than one process.
    pids = {
        r.attributes.get("pid")
        for r in pool_trace
        if r.name.startswith("item:")
    }
    assert len(pids) >= 2, f"pool fell back to serial (pids: {pids})"


def test_traced_records_link_to_real_spans(tmp_path):
    stored, trace = _traced_run(tmp_path, "linked", RunContext(trace="jsonl"))
    span_ids = {r.span_id for r in trace if r.kind == "span"}
    trace_id = derive_trace_id("fig9", "r1")
    assert stored.records, "expected records"
    for record in stored.records:
        assert record["trace"]["trace_id"] == trace_id
        assert record["trace"]["span_id"] in span_ids


def test_untraced_records_carry_no_trace_field(tmp_path):
    store = ArtifactStore(root=tmp_path)
    stored = run_to_store(
        "fig9", overrides=TINY_FIG9, ctx=RunContext(), store=store, run_id="r1"
    )
    assert all("trace" not in record for record in stored.records)


def test_tracing_changes_records_only_by_the_trace_field(tmp_path):
    traced_store, _ = _traced_run(tmp_path, "on", RunContext(trace="jsonl"))
    plain = run_to_store(
        "fig9",
        overrides=TINY_FIG9,
        ctx=RunContext(),
        store=ArtifactStore(root=tmp_path / "off"),
        run_id="r1",
    )
    stripped = [
        {k: v for k, v in record.items() if k != "trace"}
        for record in traced_store.records
    ]
    assert stripped == plain.records


def test_trace_session_restores_global_state(tmp_path):
    assert not perf.enabled and not recorder.enabled
    _traced_run(tmp_path, "restore", RunContext(trace="jsonl"))
    assert not perf.enabled, "TraceSession must restore the perf flag"
    assert not recorder.enabled, "TraceSession must release the recorder"


# --- pool perf merge (satellite: REPRO_PERF=1 under the pool) ----------

#: fig9 is analytic (no instrumented engines); fig7's node budgets bound
#: the search deterministically, so span/counter totals are
#: machine-independent and must agree serial vs pool exactly.
TINY_FIG7 = {
    "switch_counts": [10],
    "instances_per_size": 4,
    "opt_budget": 60.0,
    "or_budget": 60.0,
    "opt_node_budget": 20_000,
    "or_node_budget": 20_000,
}


def _profiled_counts(ctx):
    perf.reset()
    run_in_memory("fig7", overrides=TINY_FIG7, ctx=ctx)
    snapshot = perf.snapshot()
    return {
        path: stat["calls"] for path, stat in snapshot["spans"].items()
    }, dict(snapshot["counters"])


def test_pool_perf_spans_merge_back(two_cpus):
    serial_calls, serial_counters = _profiled_counts(RunContext(profile=True))
    pool_calls, pool_counters = _profiled_counts(pool_ctx(profile=True))
    # Without the worker merge the pool report only held the parent's
    # own spans; now every per-item span and counter comes back.
    assert pool_calls == serial_calls
    assert pool_counters == serial_counters
    assert any(path.startswith("pipeline.fig7.") for path in pool_calls)


# --- resume appends to the same trace ----------------------------------

def test_resumed_run_extends_the_same_trace(tmp_path):
    from repro.pipeline.runner import RunInterrupted

    store = ArtifactStore(root=tmp_path)
    with pytest.raises(RunInterrupted):
        run_to_store(
            "fig9",
            overrides=TINY_FIG9,
            ctx=RunContext(trace="jsonl"),
            store=store,
            run_id="r1",
            stop_after=2,
        )
    resumed = run_to_store(
        "fig9",
        ctx=RunContext(trace="jsonl"),
        store=store,
        run_id="r1",
        resume=True,
    )
    trace = read_trace(resumed.handle.directory / "trace.jsonl")
    trace_id = derive_trace_id("fig9", "r1")
    assert {r.trace_id for r in trace} == {trace_id}
    item_spans = [r for r in trace if r.name.startswith("item:")]
    keys = {r.attributes["key"] for r in item_spans}
    assert keys == {str(r["key"]) for r in resumed.records}


# --- query CLI ---------------------------------------------------------

@pytest.fixture
def traced_run_dir(tmp_path):
    store = ArtifactStore(root=tmp_path)
    stored = run_to_store(
        "fig9",
        overrides=TINY_FIG9,
        ctx=RunContext(trace="sqlite"),
        store=store,
        run_id="r1",
    )
    return tmp_path, stored


def test_cli_list_and_show(traced_run_dir, capsys):
    root, stored = traced_run_dir
    assert trace_cli(["list", "--runs-dir", str(root)]) == 0
    listing = capsys.readouterr().out
    assert derive_trace_id("fig9", "r1") in listing
    assert "fig9" in listing

    assert trace_cli(["show", "--runs-dir", str(root)]) == 0
    tree = capsys.readouterr().out
    assert "run" in tree and "item:" in tree


def test_cli_spans_filters(traced_run_dir, capsys):
    root, stored = traced_run_dir
    assert (
        trace_cli(
            ["spans", "--runs-dir", str(root), "--name", "item:", "--kind",
             "span", "--json"]
        )
        == 0
    )
    lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
    assert lines and all(line["name"].startswith("item:") for line in lines)
    assert len(lines) == len(stored.records)


def test_cli_slowest(traced_run_dir, capsys):
    root, _ = traced_run_dir
    assert trace_cli(["slowest", "--runs-dir", str(root), "-n", "3"]) == 0
    out = capsys.readouterr().out
    assert "ms" in out


def test_cli_missing_trace_is_a_clean_error(tmp_path, capsys):
    assert trace_cli(["list", "--runs-dir", str(tmp_path)]) == 2
    assert "no trace" in capsys.readouterr().err


def test_default_trace_path_picks_newest(tmp_path):
    old = tmp_path / "fig9" / "a" / "trace.jsonl"
    new = tmp_path / "fig9" / "b" / "trace.db"
    old.parent.mkdir(parents=True)
    new.parent.mkdir(parents=True)
    old.write_text("")
    new.write_bytes(b"")
    import os

    os.utime(old, (1, 1))
    os.utime(new, (2, 2))
    assert default_trace_path(str(tmp_path)) == new
    with pytest.raises(TraceQueryError):
        default_trace_path(str(tmp_path / "empty"))
