"""Property tests: incremental ``DependencyState`` == from-scratch Alg. 3.

The incremental engine's whole claim is *observational equivalence*: at
every time step of any commit trajectory, :meth:`DependencyState.relations`
must return the same chains, the same deferred set and the same cycle
verdict as :func:`dependency_relations` recomputed from scratch on the
identical pending/applied state.  These tests drive both implementations
in lockstep over hundreds of seeded instances and three commit policies
(greedy-like "commit all heads", randomised subsets, and idle steps where
time passes with no commit -- the case that exercises verdict expiry).
"""

import random

import pytest

from repro.core.dependency import (
    DependencyState,
    dependency_relations,
    drain_table,
)
from repro.core.instance import (
    random_instance,
    reversal_instance,
    segmented_instance,
)

MAX_STEPS = 200


def _assert_same(fresh, inc, context):
    assert inc.chains == fresh.chains, context
    assert inc.deferred == fresh.deferred, context
    assert inc.has_cycle == fresh.has_cycle, context


def _drive(instance, rng, policy):
    """Run one commit trajectory, checking equivalence at every step."""
    pending = [node for node in instance.switches_to_update]
    applied = {}
    state = DependencyState(instance, pending)
    t = 0
    while pending and t < MAX_STEPS:
        fresh = dependency_relations(instance, pending, applied, t)
        inc = state.relations(t)
        _assert_same(fresh, inc, f"t={t} applied={applied}")
        assert state.pending == pending, f"t={t}"

        heads = fresh.heads
        if policy == "heads":
            chosen = heads
        elif policy == "random":
            chosen = [node for node in heads if rng.random() < 0.6]
        else:  # "idle": commit nothing every third step
            chosen = [] if t % 3 == 2 else heads
        if not chosen and not heads and fresh.has_cycle:
            # Stuck on a cycle: nothing Algorithm 2 could do either.
            break
        for node in chosen:
            applied[node] = t
            pending.remove(node)
        state.commit(chosen, t)
        t += 1
    return t


@pytest.mark.parametrize("seed", range(120))
def test_random_instances_match(seed):
    rng = random.Random(10_000 + seed)
    instance = random_instance(4 + seed % 13, seed=500 + seed, max_delay=3)
    policy = ("heads", "random", "idle")[seed % 3]
    _drive(instance, rng, policy)


@pytest.mark.parametrize("seed", range(60))
def test_segmented_instances_match(seed):
    rng = random.Random(20_000 + seed)
    instance = segmented_instance(
        20 + seed % 21, seed=900 + seed, segments=2 + seed % 3, max_segment_length=8
    )
    policy = ("heads", "random", "idle")[seed % 3]
    _drive(instance, rng, policy)


@pytest.mark.parametrize("count", range(4, 14))
@pytest.mark.parametrize("policy", ["heads", "random"])
def test_reversal_instances_match(count, policy):
    rng = random.Random(30_000 + count)
    instance = reversal_instance(count)
    _drive(instance, rng, policy)


class TestDrainTableIncremental:
    """The internal incremental drain table tracks :func:`drain_table`."""

    @pytest.mark.parametrize("seed", range(20))
    def test_drains_match_after_random_commits(self, seed):
        rng = random.Random(40_000 + seed)
        instance = random_instance(6 + seed % 9, seed=1300 + seed)
        pending = list(instance.switches_to_update)
        state = DependencyState(instance, pending)
        applied = {}
        t = 0
        while pending and t < 50:
            chosen = [node for node in pending if rng.random() < 0.3]
            for node in chosen:
                applied[node] = t
                pending.remove(node)
            state.commit(chosen, t)
            expected = drain_table(instance, applied)
            for node, value in expected.items():
                assert state._drains[node] == value, f"t={t} node={node}"
            t += 1


class TestCacheFastPath:
    def test_unchanged_state_returns_cached_object(self):
        instance = reversal_instance(6)
        state = DependencyState(instance, list(instance.switches_to_update))
        first = state.relations(0)
        # No commit between the calls and no verdict can expire at t=0
        # again: the exact same DependencySet object must come back.
        assert state.relations(0) is first

    def test_commit_invalidates_cache(self):
        instance = reversal_instance(6)
        pending = list(instance.switches_to_update)
        state = DependencyState(instance, pending)
        first = state.relations(0)
        heads = first.heads
        assert heads
        state.commit(heads[:1], 0)
        second = state.relations(1)
        assert second is not first
