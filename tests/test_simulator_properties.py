"""Property-style tests for the fluid data plane (conservation, determinism)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.instance import random_instance
from repro.simulator import BandwidthMonitor, Simulator, build_dataplane
from repro.simulator.dataplane import install_config

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build(instance, delay_scale=1.0):
    sim = Simulator()
    plane = build_dataplane(sim, instance.network, delay_scale=delay_scale)
    install_config(plane, instance)
    return sim, plane


class TestConservation:
    @given(
        count=st.integers(min_value=3, max_value=10),
        seed=st.integers(min_value=0, max_value=2_000),
        rate=st.floats(min_value=0.1, max_value=5.0),
    )
    @settings(max_examples=25, **COMMON)
    def test_steady_state_delivers_injected_rate(self, count, seed, rate):
        """Flow in equals flow out once the pipeline fills."""
        instance = random_instance(count, seed=seed)
        sim, plane = build(instance)
        plane.inject_flow(
            instance.source, "h", str(instance.destination), rate=rate
        )
        sim.run(until=instance.old_path_delay + 2.0)
        assert plane.switch(instance.destination).delivered == pytest.approx(rate)
        assert plane.total_blackholed() == 0.0

    @given(
        count=st.integers(min_value=3, max_value=8),
        seed=st.integers(min_value=0, max_value=2_000),
    )
    @settings(max_examples=15, **COMMON)
    def test_stopping_the_flow_drains_the_network(self, count, seed):
        instance = random_instance(count, seed=seed)
        sim, plane = build(instance)
        context = plane.inject_flow(
            instance.source, "h", str(instance.destination), rate=1.0
        )
        sim.run(until=instance.old_path_delay + 1.0)
        plane.switch(instance.source).inject(context, 0.0)
        sim.run(until=2 * instance.old_path_delay + 3.0)
        assert plane.switch(instance.destination).delivered == 0.0
        assert all(link.utilization == 0.0 for link in plane.links.values())


class TestDeterminism:
    def test_identical_runs_identical_counters(self):
        instance = random_instance(8, seed=11)

        def run():
            sim, plane = build(instance)
            plane.inject_flow(instance.source, "h", str(instance.destination), 1.0)
            monitor = BandwidthMonitor(plane, interval=0.5)
            monitor.start()
            sim.run(until=9.0)
            return [
                (link, plane.links[link].byte_counter()) for link in sorted(plane.links)
            ]

        assert run() == run()


class TestMonitorMethodology:
    def test_bandwidth_equals_counter_delta_over_interval(self):
        """The Fig. 6 measurement methodology, verified against ground truth."""
        instance = random_instance(5, seed=2)
        sim, plane = build(instance)
        monitor = BandwidthMonitor(plane, interval=2.0)
        monitor.start()
        plane.inject_flow(instance.source, "h", str(instance.destination), 3.0)
        sim.run(until=8.5)
        first_link = (instance.old_path[0], instance.old_path[1])
        samples = monitor.link_series(*first_link)
        # After the first interval the link runs at the injected rate.
        assert samples[-1].mbps == pytest.approx(3.0)
        # Counter delta over the window matches rate * time.
        link = plane.links[first_link]
        assert link.byte_counter(8.0) - link.byte_counter(6.0) == pytest.approx(6.0)

    def test_peak_series_takes_max_across_links(self):
        instance = random_instance(5, seed=3)
        sim, plane = build(instance)
        monitor = BandwidthMonitor(plane, interval=1.0)
        monitor.start()
        plane.inject_flow(instance.source, "h", str(instance.destination), 2.0)
        sim.run(until=6.0)
        peaks = monitor.peak_series()
        assert peaks
        assert max(sample.mbps for sample in peaks) == pytest.approx(2.0)
        assert monitor.most_utilized_link() is not None

    def test_monitor_start_twice_rejected(self):
        instance = random_instance(4, seed=4)
        sim, plane = build(instance)
        monitor = BandwidthMonitor(plane, interval=1.0)
        monitor.start()
        with pytest.raises(RuntimeError):
            monitor.start()

    def test_invalid_interval_rejected(self):
        instance = random_instance(4, seed=5)
        sim, plane = build(instance)
        with pytest.raises(ValueError):
            BandwidthMonitor(plane, interval=0.0)
