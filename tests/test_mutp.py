"""Unit tests for the MUTP integer program (program (3))."""

import pytest

from repro.core.mutp import build_mutp_model, solve_mutp
from repro.core.optimal import optimal_schedule
from repro.core.trace import trace_schedule
from repro.core.instance import random_instance


class TestModelShape:
    def test_one_assignment_per_switch(self, fig1_instance):
        built = build_mutp_model(fig1_instance, horizon=4)
        for node in fig1_instance.switches_to_update:
            names = [f"z[{node},{k}]" for k in range(4)]
            assert all(name in built.model.variables for name in names)
        assignments = [
            c for c in built.model.constraints if c.name.startswith("assign")
        ]
        assert len(assignments) == len(fig1_instance.switches_to_update)

    def test_route_constraint_per_emission(self, fig1_instance):
        built = build_mutp_model(fig1_instance, horizon=4)
        routes = [c for c in built.model.constraints if c.name.startswith("route")]
        assert len(routes) == len(built.emissions)

    def test_invalid_horizon(self, fig1_instance):
        with pytest.raises(ValueError):
            build_mutp_model(fig1_instance, horizon=0)


class TestSolving:
    def test_fig1_optimum_is_four_steps(self, fig1_instance):
        schedule, result = solve_mutp(fig1_instance, horizon=4, time_budget=60)
        assert result.status == "optimal"
        assert result.objective == pytest.approx(3.0)  # last step index => 4 steps
        assert schedule is not None
        assert schedule.makespan == 4
        assert trace_schedule(fig1_instance, schedule).ok

    def test_infeasible_below_optimum_horizon(self, fig1_instance):
        schedule, result = solve_mutp(fig1_instance, horizon=3, time_budget=60)
        assert schedule is None
        assert result.status == "infeasible"

    def test_agrees_with_search_opt(self):
        instance = random_instance(5, seed=3)
        opt = optimal_schedule(instance, time_budget=20)
        assert opt.proven and opt.schedule is not None
        schedule, result = solve_mutp(instance, horizon=opt.makespan, time_budget=60)
        assert result.status == "optimal"
        assert schedule.makespan == opt.makespan
        assert trace_schedule(instance, schedule).ok

    def test_infeasible_instance(self, shortcut_instance):
        schedule, result = solve_mutp(shortcut_instance, horizon=4, time_budget=60)
        assert schedule is None
        assert result.status == "infeasible"

    def test_slow_detour_one_step(self, tiny_instance):
        schedule, result = solve_mutp(tiny_instance, horizon=1, time_budget=60)
        assert result.status == "optimal"
        assert schedule.makespan == 1
        assert trace_schedule(tiny_instance, schedule).ok
