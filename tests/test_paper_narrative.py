"""End-to-end pinning of the paper's Section II narrative.

Every claim the paper makes about its motivating example is asserted here
against the full stack: the combinatorial validators, the schedulers, the
protocols, and the emulated data plane.
"""

import random

import pytest

from repro.controller import (
    ConstantDelayModel,
    ControlChannel,
    Controller,
    perform_timed_update,
    synchronized_clocks,
)
from repro.core.greedy import greedy_schedule
from repro.core.instance import motivating_example
from repro.core.optimal import optimal_schedule
from repro.core.schedule import UpdateSchedule
from repro.core.trace import trace_schedule
from repro.core.tree import check_update_feasibility
from repro.simulator import Simulator, build_dataplane
from repro.simulator.dataplane import install_config
from repro.updates import ChronusProtocol, OrderReplacementProtocol, TwoPhaseProtocol


@pytest.fixture
def instance():
    return motivating_example()


class TestSectionII:
    def test_claim_updating_only_v2_reroutes_directly_to_v6(self, instance):
        """'assume we first only update v2: hence, the subsequent flow is
        routed directly to v6 through the link (v2, v6)' -- and the old
        flow drains behind it without congestion."""
        result = trace_schedule(instance, UpdateSchedule({"v2": 0}))
        assert result.ok
        assert result.loads[("v2", "v6")]  # the new link carries flow

    def test_claim_three_loops_when_all_updated_at_t0(self, instance):
        """Fig. 2(a): 'there would be three forwarding loops'."""
        schedule = UpdateSchedule({v: 0 for v in instance.switches_to_update})
        result = trace_schedule(instance, schedule)
        assert len(result.loops) == 3

    def test_claim_fig2b_capacity_violation(self, instance):
        """Fig. 2(b): 'the capacity of the link (v4(t1), v3(t2)) cannot
        accommodate the flows from v1 and v3'."""
        schedule = UpdateSchedule({"v1": 0, "v2": 0, "v3": 1, "v4": 1, "v5": 1})
        result = trace_schedule(instance, schedule)
        violation = [e for e in result.congestion if e.link == ("v4", "v3")]
        assert violation and violation[0].load == pytest.approx(2.0)

    def test_claim_paper_timed_sequence_is_consistent(self, instance):
        """Fig. 1(e)-(h): v2@t0, v3@t1, {v1,v4}@t2, v5@t3 is congestion-
        and loop-free at any moment in time."""
        schedule = UpdateSchedule({"v2": 0, "v3": 1, "v1": 2, "v4": 2, "v5": 3})
        assert trace_schedule(instance, schedule).ok

    def test_claim_four_steps_is_optimal(self, instance):
        """No schedule completes the example in fewer than four steps."""
        result = optimal_schedule(instance)
        assert result.proven and result.makespan == 4

    def test_claim_feasibility_check_accepts(self, instance):
        assert check_update_feasibility(instance).feasible


class TestProtocolContrast:
    def test_chronus_never_adds_rules_tp_doubles_them(self, instance):
        chronus = ChronusProtocol().plan(instance)
        tp = TwoPhaseProtocol().plan(instance)
        assert chronus.rules.headroom == 0
        assert tp.rules.peak_rules >= 2 * tp.rules.baseline_rules

    def test_or_asynchrony_congests_where_chronus_does_not(self, instance):
        from repro.analysis.metrics import evaluate_schedule
        from repro.updates.order_replacement import realize_round_times

        chronus = greedy_schedule(instance)
        assert evaluate_schedule(instance, chronus.schedule).consistent

        plan = OrderReplacementProtocol(rng=random.Random(3)).plan(instance)
        congested = 0
        for seed in range(8):
            realized = realize_round_times(
                [list(nodes) for _, nodes in plan.rounds],
                rng=random.Random(seed),
                max_skew=3,
            )
            congested += not evaluate_schedule(instance, realized).consistent
        assert congested > 0


class TestDataPlaneExecution:
    def test_timed_execution_is_clean_on_the_wire(self, instance):
        """The whole pipeline: schedule -> scheduled FlowMods -> fluid data
        plane; no link ever exceeds capacity and delivery never stops for
        longer than the path-delay gap."""
        sim = Simulator()
        plane = build_dataplane(sim, instance.network, delay_scale=1.0)
        install_config(plane, instance)
        rng = random.Random(5)
        channel = ControlChannel(
            sim, ConstantDelayModel(0.002), ConstantDelayModel(0.02), rng=rng
        )
        clocks = synchronized_clocks(instance.network.switches, 1e-6, rng=rng)
        controller = Controller(sim, channel, clocks)
        for switch in plane.switches.values():
            controller.manage(switch)
        plane.inject_flow("v1", "h1", "v6", rate=1.0)
        sim.run(until=3.0)

        schedule = greedy_schedule(instance).schedule
        trace = perform_timed_update(
            controller, plane, instance, schedule, time_unit=1.0, start_at=4.0
        )
        sim.run(until=25.0)

        assert trace.max_skew < 1e-5
        assert all(
            link.peak_utilization() <= 1.0 + 1e-9 for link in plane.links.values()
        )
        assert plane.switch("v6").delivered == pytest.approx(1.0)
        # The new path is in service, the old one fully drained.
        assert plane.link("v1", "v4").utilization == pytest.approx(1.0)
        assert plane.link("v1", "v2").utilization == 0.0
