"""Deprecation path: every legacy entry point equals its scenario.

The legacy ``run_*`` functions and script loops must keep producing the
same numbers as their scenario-registry counterparts on seeded small
grids -- both while they delegate to the pipeline and, for the ones that
keep an independent loop (``run_faults_ablation``), as a genuine
cross-implementation check.
"""

from dataclasses import asdict

import pytest

from repro.experiments import (
    faults_ablation,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table2,
    walkthrough,
)
from repro.pipeline import ArtifactStore, run_in_memory, run_to_store


def stored_render(name, overrides, tmp_path):
    """Run via the store and report from the records alone."""
    store = ArtifactStore(root=tmp_path)
    stored = run_to_store(name, overrides, store=store, run_id="legacy-eq")
    return stored.aggregate().render()


def test_walkthrough_matches_scenario():
    assert walkthrough.run_walkthrough() == run_in_memory("walkthrough").render()


def test_table2_matches_scenario(tmp_path):
    legacy = table2.run_table2(switch_count=12, seed=12).render()
    assert legacy == stored_render(
        "table2", {"switch_count": 12, "seed": 12}, tmp_path
    )


def test_fig9_matches_scenario(tmp_path):
    overrides = {"switch_counts": (100, 200), "instances_per_size": 2}
    legacy = fig9.run_fig9(
        switch_counts=(100, 200), instances_per_size=2
    ).render()
    assert legacy == stored_render("fig9", overrides, tmp_path)


def test_faults_legacy_loop_matches_scenario():
    # run_faults_ablation keeps its own (pre-pipeline) loop: this is a
    # true two-implementation equality check, records included.
    kwargs = {
        "severities": (0.0, 0.5),
        "instances_per_point": 2,
        "switch_count": 8,
        "schemes": ("chronus", "or"),
    }
    legacy = faults_ablation.run_faults_ablation(**kwargs)
    scenario = run_in_memory("faults", dict(kwargs))
    assert [asdict(r) for r in legacy.records] == [
        asdict(r) for r in scenario.records
    ]
    assert legacy.render() == scenario.render()


@pytest.mark.slow
def test_fig6_matches_scenario(tmp_path):
    overrides = {"duration": 12.0}
    legacy = fig6.run_fig6(duration=12.0)
    stored = stored_render("fig6", overrides, tmp_path)
    assert legacy.render() == stored


@pytest.mark.slow
def test_fig7_matches_scenario(tmp_path):
    overrides = {
        "switch_counts": (10,),
        "instances_per_size": 4,
        "opt_budget": 60.0,
    }
    legacy = fig7.run_fig7(
        switch_counts=(10,), instances_per_size=4, opt_budget=60.0
    ).render()
    assert legacy == stored_render("fig7", overrides, tmp_path)


@pytest.mark.slow
def test_fig8_matches_scenario(tmp_path):
    overrides = {"switch_counts": (10,), "instances_per_size": 4}
    legacy = fig8.run_fig8(switch_counts=(10,), instances_per_size=4).render()
    assert legacy == stored_render("fig8", overrides, tmp_path)


@pytest.mark.slow
def test_fig10_matches_scenario_on_cutoff_pattern(tmp_path):
    # Timing records are wall-clock: only the deterministic content is
    # comparable (sizes, schemes, which cells hit the cutoff).
    overrides = {"switch_counts": (100,), "runs_per_size": 1, "cutoff": 30.0}
    legacy = fig10.run_fig10(switch_counts=(100,), runs_per_size=1, cutoff=30.0)
    store = ArtifactStore(root=tmp_path)
    stored = run_to_store("fig10", overrides, store=store, run_id="legacy-eq")
    result = stored.aggregate()
    assert result.switch_counts == legacy.switch_counts
    assert set(result.seconds) == set(legacy.seconds)
    for scheme in result.seconds:
        pattern = [v is None for v in result.seconds[scheme]]
        assert pattern == [v is None for v in legacy.seconds[scheme]]


@pytest.mark.slow
def test_fig11_matches_scenario(tmp_path):
    overrides = {"switch_count": 60, "instances": 3, "opt_budget": 30.0}
    legacy = fig11.run_fig11(switch_count=60, instances=3, opt_budget=30.0)
    stored = stored_render("fig11", overrides, tmp_path)
    assert legacy.render() == stored
