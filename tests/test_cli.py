"""The ``python -m repro.experiments`` entry point."""

import subprocess
import sys


def run_cli(*args, timeout=240):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_walkthrough_via_cli():
    completed = run_cli("walkthrough")
    assert completed.returncode == 0, completed.stderr
    assert "Fig. 5" in completed.stdout
    assert "verdict: consistent" in completed.stdout


def test_filter_selects_single_experiment():
    completed = run_cli("table")
    assert completed.returncode == 0, completed.stderr
    assert "Table II" in completed.stdout
    assert "Fig. 7" not in completed.stdout
