"""The ``python -m repro.experiments`` entry point (subprocess level)."""

import subprocess
import sys


def run_cli(*args, timeout=240):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_walkthrough_via_cli():
    completed = run_cli("walkthrough")
    assert completed.returncode == 0, completed.stderr
    assert "Fig. 5" in completed.stdout
    assert "verdict: consistent" in completed.stdout


def test_exact_name_selects_single_experiment():
    completed = run_cli("table2")
    assert completed.returncode == 0, completed.stderr
    assert "Table II" in completed.stdout
    assert "Fig. 7" not in completed.stdout


def test_inexact_name_is_an_error_listing_scenarios():
    # "fig1" used to substring-match Figs. 10 and 11 and silently run
    # both; it must now fail fast and name every valid scenario.
    completed = run_cli("fig1")
    assert completed.returncode == 2, completed.stdout
    assert "unknown scenario 'fig1'" in completed.stderr
    assert "fig10" in completed.stderr
    assert "fig11" in completed.stderr
    assert "Fig. 10" not in completed.stdout
