"""Unit tests for the illustrative renderings (Figs. 1/2/5 walkthrough)."""

from repro.analysis.illustrate import render_dependency_evolution, render_flow_timeline
from repro.experiments.walkthrough import run_walkthrough


class TestFlowTimeline:
    def test_marks_rules_and_updates(self, fig1_instance, paper_schedule):
        text = render_flow_timeline(fig1_instance, paper_schedule)
        assert "update: v2" in text
        assert "v2=>v6" in text  # new-rule marker after v2's update
        assert "v1->v2" in text  # old-rule marker before v1's update
        assert "verdict: consistent" in text

    def test_flags_congestion(self, fig1_instance):
        from repro.core.schedule import UpdateSchedule

        bad = UpdateSchedule({"v1": 0, "v2": 0, "v3": 1, "v4": 1, "v5": 1})
        text = render_flow_timeline(fig1_instance, bad)
        assert "!" in text
        assert "congestion event" in text

    def test_window_arguments(self, fig1_instance, paper_schedule):
        text = render_flow_timeline(fig1_instance, paper_schedule, t_start=0, t_end=3)
        assert "t -1" not in text
        assert "t  3" in text


class TestDependencyEvolution:
    def test_fig5_chains_present(self, fig1_instance):
        text = render_dependency_evolution(fig1_instance)
        assert "(v2 -> v4)" in text
        assert "(v3 -> v1 -> v5)" in text
        assert "updated: v2" in text


class TestWalkthrough:
    def test_full_narrative(self):
        text = run_walkthrough()
        assert "3 forwarding loops" in text
        assert "v4->v3 carries 2 > 1" in text
        assert "verdict: consistent" in text
        assert "Fig. 5" in text
