"""Edge-case tests for the timed executors and FlowMod plumbing."""

import random

import pytest

from repro.controller import (
    ConstantDelayModel,
    ControlChannel,
    Controller,
    perform_timed_update,
)
from repro.controller.clock import SwitchClock
from repro.controller.executor import _update_message
from repro.controller.messages import FlowModAdd, FlowModDelete, FlowModModify, next_xid
from repro.core.greedy import greedy_schedule
from repro.core.instance import instance_from_paths, motivating_example
from repro.network.graph import network_from_links
from repro.simulator import Simulator, build_dataplane
from repro.simulator.dataplane import install_config


def build_world():
    instance = motivating_example()
    sim = Simulator()
    plane = build_dataplane(sim, instance.network, delay_scale=1.0)
    install_config(plane, instance)
    channel = ControlChannel(
        sim, ConstantDelayModel(0.001), ConstantDelayModel(0.01),
        rng=random.Random(0),
    )
    controller = Controller(sim, channel)
    for switch in plane.switches.values():
        controller.manage(switch)
    plane.inject_flow(instance.source, "h1", "v6", rate=1.0)
    return instance, sim, plane, controller


class TestUpdateMessageBuilder:
    def test_existing_rule_becomes_modify(self):
        instance, sim, plane, controller = build_world()
        message = _update_message(plane, instance, "v2", execute_at=None)
        assert isinstance(message, FlowModModify)
        assert message.out_port == plane.port_of("v2", "v6")

    def test_new_switch_becomes_add(self):
        net = network_from_links([("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")])
        instance = instance_from_paths(net, ["a", "b", "d"], ["a", "c", "d"])
        sim = Simulator()
        plane = build_dataplane(sim, net)
        install_config(plane, instance)
        message = _update_message(plane, instance, "c", execute_at=5.0)
        assert isinstance(message, FlowModAdd)
        assert message.execute_at == 5.0
        assert message.rule.out_port == plane.port_of("c", "d")

    def test_switch_without_new_rule_rejected(self):
        instance, sim, plane, controller = build_world()
        with pytest.raises(ValueError):
            _update_message(plane, instance, "v6", execute_at=None)


class TestTimedExecutorDefaults:
    def test_default_start_uses_lead_time(self):
        instance, sim, plane, controller = build_world()
        sim.run(until=2.0)
        schedule = greedy_schedule(instance).schedule
        trace = perform_timed_update(
            controller, plane, instance, schedule, time_unit=1.0, lead_time=0.5
        )
        assert min(trace.planned.values()) == pytest.approx(2.5)
        sim.run(until=30.0)
        assert set(trace.applied) == set(instance.switches_to_update)
        assert trace.finished_at is not None

    def test_planned_times_follow_schedule_steps(self):
        instance, sim, plane, controller = build_world()
        schedule = greedy_schedule(instance).schedule
        trace = perform_timed_update(
            controller, plane, instance, schedule, time_unit=2.0, start_at=10.0
        )
        for node, step in schedule.items():
            assert trace.planned[node] == pytest.approx(10.0 + 2.0 * step)


class TestDeletePath:
    def test_flow_mod_delete_removes_rule(self):
        instance, sim, plane, controller = build_world()
        xid = next_xid()
        controller.send_flow_mod(
            "v5", FlowModDelete(xid=xid, rule_name=instance.flow.name)
        )
        sim.run(until=1.0)
        assert instance.flow.name not in plane.switch("v5").table
        assert controller.apply_time("v5", xid) is not None

    def test_scheduled_delete(self):
        instance, sim, plane, controller = build_world()
        xid = next_xid()
        controller.send_flow_mod(
            "v5",
            FlowModDelete(xid=xid, rule_name=instance.flow.name, execute_at=5.0),
        )
        sim.run(until=10.0)
        assert controller.apply_time("v5", xid) == pytest.approx(5.0)
