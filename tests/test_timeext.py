"""Unit tests for the time-extended network (Definition 4)."""

import pytest

from repro.core.timeext import TimeExtendedNetwork, build_window
from repro.network.graph import network_from_links


@pytest.fixture
def net():
    return network_from_links([("a", "b"), ("b", "c")], delay=2)


class TestConstruction:
    def test_invalid_window_rejected(self, net):
        with pytest.raises(ValueError):
            TimeExtendedNetwork(net, t_start=3, t_end=1)

    def test_times(self, net):
        gt = TimeExtendedNetwork(net, -2, 3)
        assert list(gt.times) == [-2, -1, 0, 1, 2, 3]

    def test_timed_nodes_count(self, net):
        gt = TimeExtendedNetwork(net, 0, 1)
        assert len(list(gt.timed_nodes)) == 3 * 2

    def test_timed_links_respect_delay(self, net):
        gt = TimeExtendedNetwork(net, 0, 2)
        links = set(gt.timed_links)
        assert (("a", 0), ("b", 2)) in links
        # Departures whose arrival leaves the window are excluded.
        assert not any(src == ("a", 1) for src, _ in links)

    def test_build_window_covers_history(self, net):
        gt = build_window(net, old_path_delay=4, t0=10, horizon=1)
        assert gt.t_start == 6 and gt.t_end == 11


class TestQueries:
    def test_successors(self, net):
        gt = TimeExtendedNetwork(net, 0, 4)
        assert gt.successors(("a", 0)) == [("b", 2)]
        assert gt.successors(("a", 3)) == []  # arrival would leave window

    def test_predecessors(self, net):
        gt = TimeExtendedNetwork(net, 0, 4)
        assert gt.predecessors(("b", 2)) == [("a", 0)]
        assert gt.predecessors(("b", 1)) == []

    def test_timed_link_and_capacity(self, net):
        gt = TimeExtendedNetwork(net, 0, 4)
        link = gt.timed_link("a", "b", 1)
        assert link == (("a", 1), ("b", 3))
        assert gt.capacity(link) == 1.0

    def test_timed_link_outside_window(self, net):
        gt = TimeExtendedNetwork(net, 0, 2)
        with pytest.raises(ValueError):
            gt.timed_link("a", "b", 1)  # arrival at 3 > t_end

    def test_extend(self, net):
        gt = TimeExtendedNetwork(net, 0, 1)
        grown = gt.extend(5)
        assert grown.t_end == 5
        with pytest.raises(ValueError):
            gt.extend(0)

    def test_timed_path_truncated_at_window(self, net):
        gt = TimeExtendedNetwork(net, 0, 3)
        assert gt.timed_path(["a", "b", "c"], 0) == [("a", 0), ("b", 2)]
        grown = gt.extend(4)
        assert grown.timed_path(["a", "b", "c"], 0) == [("a", 0), ("b", 2), ("c", 4)]
