"""Differential tests: the incremental greedy engine == the fresh engine.

The incremental engine (persistent dependency state + sequential
probe-and-commit on a scratch clone) is an *optimisation*, not a new
algorithm: it must produce byte-identical schedules to the original
from-scratch path on every instance.  These tests pin that over hundreds
of seeded instances by comparing the canonical JSON serialisations, plus
feasibility flags and violation counts.

A micro-regression guard keeps the n=2000 hot path honest: the engine
must stay well under the seed implementation's wall clock (which took
over a second at this size) so accidental O(n) regressions in the
pending-set or memo bookkeeping fail loudly rather than silently.
"""

import time

import pytest

from repro.core.greedy import _make_tracker, greedy_schedule
from repro.core.instance import (
    random_instance,
    reversal_instance,
    segmented_instance,
)
from repro.core.intervals import IntervalTracker
from repro.core.intervals_array import NUMPY_AVAILABLE, ArrayIntervalTracker
from repro.core.serialization import schedule_to_json


def _assert_engines_agree(instance, label):
    inc = greedy_schedule(instance, engine="incremental")
    fresh = greedy_schedule(instance, engine="fresh")
    assert schedule_to_json(inc.schedule) == schedule_to_json(fresh.schedule), label
    assert inc.feasible == fresh.feasible, label
    assert inc.stalled_at == fresh.stalled_at, label
    assert len(inc.violations) == len(fresh.violations), label


@pytest.mark.parametrize("seed", range(140))
def test_random_instances_byte_identical(seed):
    instance = random_instance(4 + seed % 13, seed=2500 + seed, max_delay=3)
    _assert_engines_agree(instance, f"random seed={seed}")


@pytest.mark.parametrize("seed", range(60))
def test_segmented_instances_byte_identical(seed):
    instance = segmented_instance(
        20 + seed % 21, seed=3100 + seed, segments=2 + seed % 3, max_segment_length=8
    )
    _assert_engines_agree(instance, f"segmented seed={seed}")


@pytest.mark.parametrize("count", range(4, 14))
def test_reversal_instances_byte_identical(count):
    _assert_engines_agree(reversal_instance(count), f"reversal count={count}")


@pytest.mark.parametrize("seed", range(0, 140, 7))
def test_incremental_dict_engine_byte_identical(seed):
    """The incremental algorithm on the dict tracker matches both others."""
    instance = random_instance(4 + seed % 13, seed=2500 + seed, max_delay=3)
    dict_engine = greedy_schedule(instance, engine="incremental-dict")
    fresh = greedy_schedule(instance, engine="fresh")
    assert schedule_to_json(dict_engine.schedule) == schedule_to_json(fresh.schedule)
    assert dict_engine.feasible == fresh.feasible
    assert dict_engine.stalled_at == fresh.stalled_at


def test_default_engine_rides_the_array_tracker():
    instance = reversal_instance(4)
    tracker = _make_tracker(instance, 0, None, "incremental")
    if NUMPY_AVAILABLE:
        assert isinstance(tracker, ArrayIntervalTracker)
    else:
        assert isinstance(tracker, IntervalTracker)
    assert isinstance(
        _make_tracker(instance, 0, None, "incremental-dict"), IntervalTracker
    )
    assert isinstance(_make_tracker(instance, 0, None, "fresh"), IntervalTracker)


def test_unknown_engine_rejected():
    instance = reversal_instance(4)
    with pytest.raises(ValueError):
        greedy_schedule(instance, engine="warp")


def test_paper_mode_unaffected_by_engine_kwarg():
    instance = reversal_instance(8)
    a = greedy_schedule(instance, mode="paper", engine="incremental")
    b = greedy_schedule(instance, mode="paper", engine="fresh")
    assert schedule_to_json(a.schedule) == schedule_to_json(b.schedule)


class TestScaleRegression:
    """Wall-clock guard on the optimised hot path (generous CI headroom)."""

    def test_n2000_completes_fast_and_feasible(self):
        instance = segmented_instance(2000, seed=2000)
        start = time.perf_counter()
        result = greedy_schedule(instance)
        elapsed = time.perf_counter() - start
        assert result.feasible
        # The pre-optimisation implementation took >1.1s here; the engine
        # now runs in ~0.3s.  3s keeps slow CI machines out of the noise
        # while still catching an accidental return to the old complexity.
        assert elapsed < 3.0, f"greedy at n=2000 took {elapsed:.2f}s"
