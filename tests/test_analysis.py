"""Unit tests for metrics, statistics and rendering helpers."""

import pytest

from repro.analysis.metrics import congested_timed_links, evaluate_schedule
from repro.analysis.stats import BoxStats, box_stats, cdf_points, mean, percentile
from repro.analysis.timeseries import render_series, render_table
from repro.core.schedule import UpdateSchedule


class TestMetrics:
    def test_paper_schedule_is_consistent(self, fig1_instance, paper_schedule):
        metrics = evaluate_schedule(fig1_instance, paper_schedule)
        assert metrics.consistent
        assert metrics.makespan == 4
        assert metrics.congested_timed_links == 0

    def test_bad_schedule_counts_violations(self, fig1_instance):
        schedule = UpdateSchedule({"v1": 0, "v2": 0, "v3": 1, "v4": 1, "v5": 1})
        metrics = evaluate_schedule(fig1_instance, schedule)
        assert not metrics.consistent
        assert metrics.congested_timed_links >= 1
        assert congested_timed_links(fig1_instance, schedule) == metrics.congested_timed_links


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        assert mean([]) == 0.0

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 50) == 5.0
        assert percentile([1, 2, 3, 4], 0) == 1
        assert percentile([1, 2, 3, 4], 100) == 4

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_cdf_points(self):
        points = cdf_points([3, 1, 3, 2])
        assert points == [(1, 0.25), (2, 0.5), (3, 1.0)]
        assert cdf_points([]) == []

    def test_box_stats(self):
        stats = box_stats([1, 2, 3, 4, 100])
        assert stats.minimum == 1
        assert stats.median == 3
        assert stats.maximum == 100
        assert "med=3" in stats.row()

    def test_box_stats_empty(self):
        with pytest.raises(ValueError):
            box_stats([])


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "bbbb"], [[1, 2], [33, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "bbbb" in lines[1]
        assert len(lines) == 5

    def test_render_series_merges_time_axes(self):
        text = render_series(
            {"x": [(0.0, 1.0), (1.0, 2.0)], "y": [(1.0, 5.0)]}
        )
        assert "-" in text  # missing sample placeholder
        assert "5.00" in text
