"""Unit tests for the bench script's greedy regression gate."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "bench_script", REPO_ROOT / "scripts" / "bench.py"
)
bench = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("bench_script", bench)
_spec.loader.exec_module(bench)


def record(seconds, cpus=4, quick=False, profile=False):
    entry = {"cpus": cpus, "quick": quick, "greedy": {"4000": seconds}}
    if profile:
        entry["profile"] = {"spans": {}, "counters": {}}
    return entry


class TestGreedyRegressionGate:
    def test_no_history_skips(self):
        assert bench.greedy_regression(record(1.0), []) is None

    def test_within_limit_passes(self):
        history = [record(1.0), record(1.2)]
        assert bench.greedy_regression(record(1.29), history) is None

    def test_regression_fails(self):
        history = [record(1.0)]
        message = bench.greedy_regression(record(1.5), history)
        assert message is not None
        assert "greedy[4000]" in message

    def test_best_prior_is_the_baseline(self):
        # 1.5s is over 1.3x the best (1.0s) even though a worse prior exists.
        history = [record(2.0), record(1.0)]
        assert bench.greedy_regression(record(1.5), history) is not None

    def test_other_machine_class_skipped(self):
        history = [record(1.0, cpus=32)]
        assert bench.greedy_regression(record(9.9, cpus=4), history) is None

    def test_quick_records_ignored(self):
        history = [record(0.1, quick=True)]
        assert bench.greedy_regression(record(9.9), history) is None

    def test_profiled_records_ignored_both_sides(self):
        history = [record(1.0)]
        assert bench.greedy_regression(record(9.9, profile=True), history) is None
        assert bench.greedy_regression(record(1.0), [record(0.1, profile=True)]) is None

    def test_quick_current_record_skips(self):
        current = {"cpus": 4, "quick": True, "greedy": {"200": 0.05}}
        assert bench.greedy_regression(current, [record(1.0)]) is None
