"""Unit tests for the bench script's greedy regression gate."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "bench_script", REPO_ROOT / "scripts" / "bench.py"
)
bench = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("bench_script", bench)
_spec.loader.exec_module(bench)


def record(seconds, cpus=4, quick=False, profile=False, sizes=None):
    greedy = sizes if sizes is not None else {"4000": seconds}
    entry = {"cpus": cpus, "quick": quick, "greedy": dict(greedy)}
    if profile:
        entry["profile"] = {"spans": {}, "counters": {}}
    return entry


class TestGreedyRegressionGate:
    def test_no_history_skips(self):
        assert bench.greedy_regression(record(1.0), []) is None

    def test_within_limit_passes(self):
        history = [record(1.0), record(1.2)]
        assert bench.greedy_regression(record(1.29), history) is None

    def test_regression_fails(self):
        history = [record(1.0)]
        message = bench.greedy_regression(record(1.5), history)
        assert message is not None
        assert "greedy[4000]" in message

    def test_best_prior_is_the_baseline(self):
        # 1.5s is over 1.3x the best (1.0s) even though a worse prior exists.
        history = [record(2.0), record(1.0)]
        assert bench.greedy_regression(record(1.5), history) is not None

    def test_other_machine_class_skipped(self):
        history = [record(1.0, cpus=32)]
        assert bench.greedy_regression(record(9.9, cpus=4), history) is None

    def test_quick_records_ignored(self):
        history = [record(0.1, quick=True)]
        assert bench.greedy_regression(record(9.9), history) is None

    def test_profiled_records_ignored_both_sides(self):
        history = [record(1.0)]
        assert bench.greedy_regression(record(9.9, profile=True), history) is None
        assert bench.greedy_regression(record(1.0), [record(0.1, profile=True)]) is None

    def test_quick_current_record_skips(self):
        current = {"cpus": 4, "quick": True, "greedy": {"200": 0.05}}
        assert bench.greedy_regression(current, [record(1.0)]) is None


class TestMultiSizeGate:
    """Every measured size gates independently against its own priors."""

    def test_regression_at_a_large_size_fails(self):
        history = [record(None, sizes={"4000": 1.0, "50000": 8.0})]
        current = record(None, sizes={"4000": 1.0, "50000": 20.0})
        message = bench.greedy_regression(current, history)
        assert message is not None
        assert "greedy[50000]" in message
        assert "greedy[4000]" not in message

    def test_new_size_without_priors_skipped(self):
        # Adding a bench size must never fail its own first run.
        history = [record(None, sizes={"4000": 1.0})]
        current = record(None, sizes={"4000": 1.1, "100000": 99.0})
        assert bench.greedy_regression(current, history) is None

    def test_multiple_failures_all_reported(self):
        history = [record(None, sizes={"400": 0.1, "4000": 1.0})]
        current = record(None, sizes={"400": 0.5, "4000": 5.0})
        message = bench.greedy_regression(current, history)
        assert message is not None
        assert "greedy[400]" in message
        assert "greedy[4000]" in message
        assert ";" in message

    def test_sizes_gate_against_their_own_best(self):
        history = [
            record(None, sizes={"4000": 1.0, "50000": 10.0}),
            record(None, sizes={"4000": 2.0, "50000": 8.0}),
        ]
        # Each current size is within 1.3x of that size's best prior.
        current = record(None, sizes={"4000": 1.2, "50000": 10.0})
        assert bench.greedy_regression(current, history) is None

    def test_non_numeric_size_entries_skipped(self):
        history = [record(None, sizes={"4000": 1.0})]
        current = record(None, sizes={"4000": "skipped"})
        assert bench.greedy_regression(current, history) is None
