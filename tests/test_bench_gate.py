"""Unit tests for the bench script's regression gates."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "bench_script", REPO_ROOT / "scripts" / "bench.py"
)
bench = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("bench_script", bench)
_spec.loader.exec_module(bench)


def record(seconds, cpus=4, quick=False, profile=False, sizes=None):
    greedy = sizes if sizes is not None else {"4000": seconds}
    entry = {"cpus": cpus, "quick": quick, "greedy": dict(greedy)}
    if profile:
        entry["profile"] = {"spans": {}, "counters": {}}
    return entry


class TestGreedyRegressionGate:
    def test_no_history_skips(self):
        assert bench.greedy_regression(record(1.0), []) is None

    def test_within_limit_passes(self):
        history = [record(1.0), record(1.2)]
        assert bench.greedy_regression(record(1.29), history) is None

    def test_regression_fails(self):
        history = [record(1.0)]
        message = bench.greedy_regression(record(1.5), history)
        assert message is not None
        assert "greedy[4000]" in message

    def test_best_prior_is_the_baseline(self):
        # 1.5s is over 1.3x the best (1.0s) even though a worse prior exists.
        history = [record(2.0), record(1.0)]
        assert bench.greedy_regression(record(1.5), history) is not None

    def test_other_machine_class_skipped(self):
        history = [record(1.0, cpus=32)]
        assert bench.greedy_regression(record(9.9, cpus=4), history) is None

    def test_quick_records_ignored(self):
        history = [record(0.1, quick=True)]
        assert bench.greedy_regression(record(9.9), history) is None

    def test_profiled_records_ignored_both_sides(self):
        history = [record(1.0)]
        assert bench.greedy_regression(record(9.9, profile=True), history) is None
        assert bench.greedy_regression(record(1.0), [record(0.1, profile=True)]) is None

    def test_quick_current_record_skips(self):
        current = {"cpus": 4, "quick": True, "greedy": {"200": 0.05}}
        assert bench.greedy_regression(current, [record(1.0)]) is None


class TestMultiSizeGate:
    """Every measured size gates independently against its own priors."""

    def test_regression_at_a_large_size_fails(self):
        history = [record(None, sizes={"4000": 1.0, "50000": 8.0})]
        current = record(None, sizes={"4000": 1.0, "50000": 20.0})
        message = bench.greedy_regression(current, history)
        assert message is not None
        assert "greedy[50000]" in message
        assert "greedy[4000]" not in message

    def test_new_size_without_priors_skipped(self):
        # Adding a bench size must never fail its own first run.
        history = [record(None, sizes={"4000": 1.0})]
        current = record(None, sizes={"4000": 1.1, "100000": 99.0})
        assert bench.greedy_regression(current, history) is None

    def test_multiple_failures_all_reported(self):
        history = [record(None, sizes={"400": 0.1, "4000": 1.0})]
        current = record(None, sizes={"400": 0.5, "4000": 5.0})
        message = bench.greedy_regression(current, history)
        assert message is not None
        assert "greedy[400]" in message
        assert "greedy[4000]" in message
        assert ";" in message

    def test_sizes_gate_against_their_own_best(self):
        history = [
            record(None, sizes={"4000": 1.0, "50000": 10.0}),
            record(None, sizes={"4000": 2.0, "50000": 8.0}),
        ]
        # Each current size is within 1.3x of that size's best prior.
        current = record(None, sizes={"4000": 1.2, "50000": 10.0})
        assert bench.greedy_regression(current, history) is None

    def test_non_numeric_size_entries_skipped(self):
        history = [record(None, sizes={"4000": 1.0})]
        current = record(None, sizes={"4000": "skipped"})
        assert bench.greedy_regression(current, history) is None


def opt_record(nodes_per_sec, engine="array", cpus=1, switches=30, instances=8,
               quick=False, profile=False, omit_engine=False):
    opt = {
        "switches": switches,
        "instances": instances,
        "nodes_per_sec": nodes_per_sec,
        "explored": 1000,
        "elapsed": 1.0,
        "proven": 4,
    }
    if not omit_engine:
        opt["engine"] = engine
    entry = {"cpus": cpus, "quick": quick, "opt": opt}
    if profile:
        entry["profile"] = {"spans": {}, "counters": {}}
    return entry


class TestOptRegressionGate:
    def test_no_history_skips(self):
        assert bench.opt_regression(opt_record(2000.0), []) is None

    def test_within_limit_passes(self):
        history = [opt_record(2000.0)]
        assert bench.opt_regression(opt_record(1600.0), history) is None

    def test_regression_fails(self):
        history = [opt_record(2000.0)]
        message = bench.opt_regression(opt_record(1000.0), history)
        assert message is not None
        assert "opt[array]" in message

    def test_best_prior_is_the_baseline(self):
        history = [opt_record(500.0), opt_record(2000.0)]
        assert bench.opt_regression(opt_record(1000.0), history) is not None

    def test_other_engine_not_comparable(self):
        # A new engine's first record must not be gated against the old
        # engine's throughput (node granularities differ).
        history = [opt_record(2000.0, engine="reference")]
        assert bench.opt_regression(opt_record(100.0, engine="array"), history) is None

    def test_legacy_records_count_as_reference(self):
        history = [opt_record(172.0, omit_engine=True)]
        message = bench.opt_regression(opt_record(100.0, engine="reference"), history)
        assert message is not None
        assert bench.opt_regression(opt_record(100.0, engine="array"), history) is None

    def test_other_machine_class_skipped(self):
        history = [opt_record(2000.0, cpus=32)]
        assert bench.opt_regression(opt_record(100.0, cpus=1), history) is None

    def test_other_workload_skipped(self):
        history = [opt_record(2000.0, switches=20)]
        assert bench.opt_regression(opt_record(100.0, switches=30), history) is None

    def test_quick_and_profiled_records_skipped(self):
        history = [opt_record(2000.0)]
        assert bench.opt_regression(opt_record(100.0, quick=True), history) is None
        assert bench.opt_regression(opt_record(100.0, profile=True), history) is None
        assert bench.opt_regression(
            opt_record(100.0), [opt_record(9000.0, quick=True)]
        ) is None


def service_record(updates_per_sec, cpus=4, cells=2, pods=6, requests=80,
                   conformant=True, deterministic=True, quick=False,
                   profile=False):
    entry = {
        "cpus": cpus,
        "quick": quick,
        "service": {
            "cells": cells,
            "pods": pods,
            "requests": requests,
            "served": requests,
            "updates_per_sec": updates_per_sec,
            "latency_p50": 3.5,
            "latency_p95": 6.2,
            "conformant": conformant,
            "deterministic": deterministic,
        },
    }
    if profile:
        entry["profile"] = {"spans": {}, "counters": {}}
    return entry


class TestServiceRegressionGate:
    def test_no_history_skips_throughput(self):
        assert bench.service_regression(service_record(50.0), []) is None

    def test_missing_service_block_skips(self):
        assert bench.service_regression({"cpus": 4}, []) is None

    def test_within_limit_passes(self):
        history = [service_record(50.0)]
        assert bench.service_regression(service_record(40.0), history) is None

    def test_throughput_regression_fails(self):
        history = [service_record(50.0)]
        message = bench.service_regression(service_record(30.0), history)
        assert message is not None
        assert "upd/s" in message

    def test_best_prior_is_the_baseline(self):
        history = [service_record(10.0), service_record(50.0)]
        assert bench.service_regression(service_record(30.0), history) is not None

    def test_nondeterminism_fails_without_history(self):
        message = bench.service_regression(
            service_record(50.0, deterministic=False), []
        )
        assert message is not None
        assert "deterministic" in message

    def test_nonconformance_fails_without_history(self):
        message = bench.service_regression(
            service_record(50.0, conformant=False), []
        )
        assert message is not None
        assert "conformant" in message

    def test_hard_invariants_fail_even_on_quick_records(self):
        assert bench.service_regression(
            service_record(50.0, quick=True, deterministic=False), []
        ) is not None

    def test_other_machine_class_skipped(self):
        history = [service_record(50.0, cpus=32)]
        assert bench.service_regression(
            service_record(1.0, cpus=4), history
        ) is None

    def test_other_workload_shape_skipped(self):
        history = [service_record(50.0, pods=16)]
        assert bench.service_regression(
            service_record(1.0, pods=6), history
        ) is None

    def test_quick_and_profiled_records_skip_throughput(self):
        history = [service_record(50.0)]
        assert bench.service_regression(
            service_record(1.0, quick=True), history
        ) is None
        assert bench.service_regression(
            service_record(1.0, profile=True), history
        ) is None
        assert bench.service_regression(
            service_record(30.0), [service_record(900.0, quick=True)]
        ) is None
