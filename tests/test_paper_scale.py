"""The paper-scale preset runner (smoke-level: presets resolve and guard)."""

import repro.experiments.paper_scale as paper_scale


def test_runner_registry_covers_all_simulation_figures():
    assert set(paper_scale.RUNNERS) == {
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig10-greedy",
        "fig11",
    }


def test_fig10_greedy_preset_targets_paper_sizes(monkeypatch):
    captured = {}

    def fake_run_fig10(**kwargs):
        captured.update(kwargs)
        return "ok"

    monkeypatch.setattr(paper_scale.fig10, "run_fig10", fake_run_fig10)
    assert paper_scale.run_fig10_greedy_paper() == "ok"
    assert captured["schemes"] == ("chronus",)
    assert captured["switch_counts"] == paper_scale.PAPER_SIZES_LARGE
    assert captured["cutoff"] == paper_scale.PAPER_CUTOFF


def test_unknown_experiment_rejected(capsys):
    assert paper_scale.main(["nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().out


def test_presets_match_paper_parameters():
    assert paper_scale.PAPER_INSTANCES == 500
    assert paper_scale.PAPER_CUTOFF == 600.0
    assert paper_scale.PAPER_SIZES_LARGE[-1] == 6000


def test_main_dispatch_runs_selected(monkeypatch, capsys):
    class Stub:
        def render(self):
            return "stub-table"

    monkeypatch.setitem(paper_scale.RUNNERS, "fig7", lambda: Stub())
    assert paper_scale.main(["fig7"]) == 0
    out = capsys.readouterr().out
    assert "fig7 at paper scale" in out
    assert "stub-table" in out
