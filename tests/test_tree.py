"""Unit tests for Algorithm 1 (the tree feasibility check)."""

import pytest

from repro.core.instance import random_instance, reversal_instance, segmented_instance
from repro.core.optimal import optimal_schedule
from repro.core.trace import trace_schedule
from repro.core.tree import _segment_delays, check_update_feasibility


class TestExamples:
    def test_motivating_example_is_feasible(self, fig1_instance):
        result = check_update_feasibility(fig1_instance)
        assert result.feasible
        assert result.schedule is not None
        assert trace_schedule(fig1_instance, result.schedule).ok

    def test_slow_detour_feasible(self, tiny_instance):
        assert check_update_feasibility(tiny_instance).feasible

    def test_fast_shortcut_infeasible(self, shortcut_instance):
        result = check_update_feasibility(shortcut_instance)
        assert not result.feasible
        assert "a" in result.blocked
        assert "phi(p)" in result.reason or "cons" in result.reason

    def test_reversal_feasible(self):
        assert check_update_feasibility(reversal_instance(7)).feasible

    def test_nothing_to_update(self, fig1_instance):
        from repro.core.instance import instance_from_paths

        instance = instance_from_paths(
            fig1_instance.network, fig1_instance.old_path, fig1_instance.old_path
        )
        result = check_update_feasibility(instance)
        assert result.feasible
        assert result.schedule.makespan == 0

    def test_boolean_protocol(self, fig1_instance):
        assert check_update_feasibility(fig1_instance)


class TestSegmentDelays:
    def test_forward_crossing(self, fig1_instance):
        # v2's new edge jumps straight to the destination: phi(p)=1 vs the
        # old segment v2..v6 with phi(q)=4.
        phi_p, phi_q = _segment_delays(fig1_instance, "v2")
        assert (phi_p, phi_q) == (1, 4)

    def test_backward_crossing_has_no_old_segment(self, fig1_instance):
        phi_p, phi_q = _segment_delays(fig1_instance, "v3")  # points back to v2
        assert phi_q is None


class TestAgreementWithOPT:
    """Theorem 2: the walk decides feasibility for uniform link delays."""

    @pytest.mark.parametrize("seed", range(25))
    def test_matches_exact_search(self, seed):
        instance = random_instance(6, seed=seed)  # uniform delays
        tree = check_update_feasibility(instance)
        opt = optimal_schedule(instance, time_budget=15)
        if opt.feasible is None:
            pytest.skip("OPT budget exhausted")
        assert tree.feasible == opt.feasible

    @pytest.mark.parametrize("seed", range(8))
    def test_segmented_instances_feasible(self, seed):
        instance = segmented_instance(25, seed=seed, segments=2, max_segment_length=5)
        assert check_update_feasibility(instance).feasible

    @pytest.mark.parametrize("seed", range(10))
    def test_witness_schedules_are_valid(self, seed):
        instance = random_instance(7, seed=50 + seed)
        result = check_update_feasibility(instance)
        if result.feasible:
            assert trace_schedule(instance, result.schedule).ok
