"""White-box tests for the interval tracker's splitting machinery."""

import pytest

from repro.core.instance import motivating_example
from repro.core.intervals import (
    BLACKHOLE,
    DELIVERED,
    LOOPED,
    FlowClass,
    IntervalTracker,
    RoundReport,
    _route_from,
    _split_class,
    _sweep_link,
)


@pytest.fixture
def instance():
    return motivating_example()


def make_report():
    return RoundReport(time=0, nodes=())


class TestRouteFrom:
    def test_reaches_destination(self, instance):
        nodes, outcome, loop = _route_from(instance, instance.old_config, ["v1"])
        assert nodes == ["v1", "v2", "v3", "v4", "v5", "v6"]
        assert outcome == DELIVERED and loop is None

    def test_detects_revisit_of_prefix(self, instance):
        config = dict(instance.old_config)
        config["v4"] = "v3"  # v4's new rule while v3 still points forward
        nodes, outcome, loop = _route_from(instance, config, ["v1", "v2", "v3", "v4"])
        assert outcome == LOOPED
        assert loop == "v3"
        assert nodes[-1] == "v3"  # truncated right after the revisit

    def test_blackhole_on_missing_rule(self, instance):
        config = {"v1": "v2"}  # nothing beyond v2
        nodes, outcome, loop = _route_from(instance, config, ["v1"])
        assert outcome == BLACKHOLE
        assert nodes == ["v1", "v2"]


class TestSplitClass:
    def old_class(self, instance):
        return FlowClass(
            lo=None, hi=None,
            nodes=instance.old_path,
            offsets=tuple(range(len(instance.old_path))),
        )

    def test_unaffected_class_returns_none(self, instance):
        cls = self.old_class(instance)
        pieces = _split_class(
            instance, cls, {"zz"}, 0, instance.old_config, make_report()
        )
        assert pieces is None

    def test_split_partitions_emissions(self, instance):
        cls = self.old_class(instance)
        config = instance.config_at({"v2": 0}, 0)
        split = _split_class(instance, cls, {"v2"}, 0, config, make_report())
        assert split is not None
        keep, fresh = split
        (deflected,) = fresh
        # v2 sits at offset 1: emissions >= -1 deflect.
        assert (keep.lo, keep.hi) == (None, -2)
        assert (deflected.lo, deflected.hi) == (-1, None)
        assert deflected.nodes == ("v1", "v2", "v6")
        assert deflected.fresh_from == 1

    def test_threshold_beyond_interval_is_ignored(self, instance):
        cls = FlowClass(
            lo=0, hi=0,
            nodes=instance.old_path,
            offsets=tuple(range(len(instance.old_path))),
        )
        # Updating v5 at time 100: emission 0 passes v5 at t=4 < 100.
        config = instance.config_at({"v5": 100}, 100)
        pieces = _split_class(instance, cls, {"v5"}, 100, config, make_report())
        assert pieces is None

    def test_looped_class_not_extended_past_kill_point(self, instance):
        looped = FlowClass(
            lo=0, hi=5,
            nodes=("v1", "v2", "v3", "v4", "v3"),
            offsets=(0, 1, 2, 3, 4),
            outcome=LOOPED,
            loop_node="v3",
        )
        # Updating v3 (the final, revisited position) must not resurrect
        # the already-killed units...
        config = instance.config_at({"v3": 0}, 0)
        split = _split_class(instance, looped, {"v3"}, 0, config, make_report())
        # ...but the first v3 occurrence (offset 2) still deflects them.
        assert split is not None
        _trim, fresh = split
        for piece in fresh:
            if piece.outcome == DELIVERED:
                assert piece.nodes[:3] == ("v1", "v2", "v3")

    def test_multiple_hits_partition_by_first_deflection(self, instance):
        cls = self.old_class(instance)
        config = instance.config_at({"v2": 0, "v4": 0}, 0)
        report = make_report()
        split = _split_class(instance, cls, {"v2", "v4"}, 0, config, report)
        # Three pieces: keep, deflect-at-v4 (older emissions), deflect-at-v2.
        assert split is not None
        keep, fresh = split
        assert keep is not None and len(fresh) == 2
        assert keep.nodes == instance.old_path
        assert keep.hi == -4  # emissions reaching v4 before t=0


class TestSweepLink:
    def test_disjoint_intervals_no_congestion(self):
        spans = _sweep_link(("a", "b"), 1.0, [(0, 4, 1.0), (5, 9, 1.0)], 0)
        assert spans == []

    def test_overlap_reports_span(self):
        spans = _sweep_link(("a", "b"), 1.0, [(0, 4, 1.0), (3, 9, 1.0)], 0)
        assert len(spans) == 1
        assert (spans[0].start, spans[0].end) == (3, 4)
        assert spans[0].load == pytest.approx(2.0)

    def test_demand_below_capacity_tolerated(self):
        spans = _sweep_link(("a", "b"), 2.0, [(0, 4, 1.0), (3, 9, 1.0)], 0)
        assert spans == []

    def test_open_ended_intervals_clamped(self):
        spans = _sweep_link(("a", "b"), 1.0, [(None, 5, 1.0), (3, None, 1.0)], 0)
        assert len(spans) == 1
        assert (spans[0].start, spans[0].end) == (3, 5)

    def test_heterogeneous_demands(self):
        spans = _sweep_link(
            ("a", "b"), 1.0, [(0, 9, 0.5), (2, 4, 0.4), (3, 3, 0.3)], 0
        )
        assert len(spans) == 1
        assert (spans[0].start, spans[0].end) == (3, 3)
        assert spans[0].load == pytest.approx(1.2)

    def test_single_oversized_interval(self):
        spans = _sweep_link(("a", "b"), 1.0, [(0, 2, 1.5)], 0)
        assert len(spans) == 1
        assert spans[0].load == pytest.approx(1.5)

    def test_span_clipped_at_t0(self):
        spans = _sweep_link(("a", "b"), 1.0, [(-5, 5, 1.0), (-5, 5, 1.0)], 0)
        assert len(spans) == 1
        assert spans[0].start == 0


class TestSweepFastPaths:
    """The sweep's early exits must never change its verdict."""

    def test_total_load_within_capacity_exits_even_with_overlap(self):
        spans = _sweep_link(("a", "b"), 3.0, [(0, 9, 1.0), (0, 9, 1.0), (0, 9, 1.0)], 0)
        assert spans == []

    def test_disjoint_open_ended_intervals_exit(self):
        # Total load exceeds capacity but the intervals never stack.
        spans = _sweep_link(("a", "b"), 1.0, [(None, 0, 1.0), (1, None, 1.0)], 0)
        assert spans == []

    def test_fully_open_overlap_reports_precise_clamps(self):
        # Two always-on streams: the slow path must clamp just outside the
        # finite coordinates (here: none, so +/-1), not at the sentinels.
        spans = _sweep_link(("a", "b"), 1.0, [(None, None, 1.0), (None, None, 1.0)], 0)
        assert len(spans) == 1
        assert (spans[0].start, spans[0].end) == (0, 1)
        assert spans[0].load == pytest.approx(2.0)

    def test_empty_intervals_are_ignored(self):
        spans = _sweep_link(("a", "b"), 1.0, [(5, 3, 1.0), (0, 2, 1.0), (1, 2, 1.0)], 0)
        assert len(spans) == 1
        assert (spans[0].start, spans[0].end) == (1, 2)

    def test_matches_brute_force_on_random_inputs(self):
        import random as _random

        rng = _random.Random(7)
        for _ in range(200):
            intervals = []
            # The sweep's clamping contract allows at most one minus- and
            # one plus-infinite interval per link (see its docstring).
            open_lo_left = open_hi_left = 1
            for _ in range(rng.randint(1, 6)):
                lo = rng.randint(-8, 8)
                hi = lo + rng.randint(0, 6)
                if open_lo_left and rng.random() < 0.15:
                    lo = None
                    open_lo_left = 0
                if open_hi_left and rng.random() < 0.15:
                    hi = None
                    open_hi_left = 0
                intervals.append((lo, hi, rng.choice([0.5, 1.0, 1.5])))
            capacity = rng.choice([1.0, 1.5, 2.0])
            spans = _sweep_link(("a", "b"), capacity, intervals, 0)
            # Brute force over the window the sweep reports in: open ends
            # are clamped one past the last finite coordinate (the load is
            # constant beyond it), so only check up to that point.
            finite = [x for lo, hi, _ in intervals for x in (lo, hi) if x is not None]
            pos = (max(finite) if finite else 0) + 1
            for t in range(0, pos + 1):
                load = sum(
                    demand
                    for lo, hi, demand in intervals
                    if (lo is None or lo <= t) and (hi is None or t <= hi)
                )
                covered = any(s.start <= t <= s.end for s in spans)
                assert covered == (load > capacity + 1e-9), (
                    f"t={t} load={load} capacity={capacity} intervals={intervals}"
                )


class TestTrimInPlace:
    """Narrowing commits replace the class object, keeping its id."""

    def test_trim_keeps_class_id_and_narrows_bounds(self, instance):
        tracker = IntervalTracker(instance)
        (initial_cid,) = tracker._alive
        before = tracker._classes[initial_cid]
        tracker.apply_round(["v2"], 0)
        # The initial class survives under the same id, trimmed to the
        # emissions that pass v2 before the update.
        assert initial_cid in tracker._alive
        trimmed = tracker._classes[initial_cid]
        assert trimmed is not before
        assert trimmed.nodes == before.nodes
        assert trimmed.hi == -2  # v2 sits at offset 1; threshold 0 - 1

    def test_warm_memo_agrees_with_cold_tracker(self, instance):
        warm = IntervalTracker(instance)
        warm.preview_round(["v2"], 0)  # populate the per-link entry memos
        warm.apply_round(["v2"], 0)
        warm.preview_round(["v3"], 1)
        warm.apply_round(["v3"], 1)
        cold = IntervalTracker(instance)
        cold.apply_round(["v2"], 0)
        cold.apply_round(["v3"], 1)
        assert warm.congestion_spans() == cold.congestion_spans()
        for link in instance.network.links:
            key = (link.src, link.dst)
            assert sorted(
                warm.link_departure_spans(*key), key=repr
            ) == sorted(cold.link_departure_spans(*key), key=repr)

    def test_probe_and_commit_matches_preview_apply(self, instance):
        a = IntervalTracker(instance)
        b = IntervalTracker(instance)
        report_a = a.probe_and_commit(["v2"], 0)
        preview = b.preview_round(["v2"], 0)
        report_b = b.apply_round(["v2"], 0)
        assert report_a.ok == preview.ok == report_b.ok
        assert a.applied == b.applied
        assert a.congestion_spans() == b.congestion_spans()

    def test_failed_probe_leaves_tracker_untouched(self, instance):
        tracker = IntervalTracker(
            instance, background={("v1", "v2"): [(None, None, instance.demand)]}
        )
        spans_before = tracker.congestion_spans()
        report = tracker.probe_and_commit(["v2"], 0)
        if report.ok:
            pytest.skip("instance admits the round despite background load")
        assert tracker.applied == {}
        assert tracker.congestion_spans() == spans_before


class TestNodeIndexConsistency:
    def test_indexes_track_class_lifecycle(self, instance):
        tracker = IntervalTracker(instance)
        tracker.apply_round(["v2"], 0)
        tracker.apply_round(["v3"], 1)
        # Every alive class id referenced by the indexes must exist; every
        # alive class must be findable through its nodes and links.
        for cid in tracker._alive:
            cls = tracker._classes[cid]
            for node in cls.nodes:
                assert cid in tracker._node_index[node]
            for _, link in cls.links():
                assert cid in tracker._link_index[link]
