"""White-box tests for the interval tracker's splitting machinery."""

import pytest

from repro.core.instance import motivating_example
from repro.core.intervals import (
    BLACKHOLE,
    DELIVERED,
    LOOPED,
    FlowClass,
    IntervalTracker,
    RoundReport,
    _route_from,
    _split_class,
    _sweep_link,
)


@pytest.fixture
def instance():
    return motivating_example()


def make_report():
    return RoundReport(time=0, nodes=())


class TestRouteFrom:
    def test_reaches_destination(self, instance):
        nodes, outcome, loop = _route_from(instance, instance.old_config, ["v1"])
        assert nodes == ["v1", "v2", "v3", "v4", "v5", "v6"]
        assert outcome == DELIVERED and loop is None

    def test_detects_revisit_of_prefix(self, instance):
        config = dict(instance.old_config)
        config["v4"] = "v3"  # v4's new rule while v3 still points forward
        nodes, outcome, loop = _route_from(instance, config, ["v1", "v2", "v3", "v4"])
        assert outcome == LOOPED
        assert loop == "v3"
        assert nodes[-1] == "v3"  # truncated right after the revisit

    def test_blackhole_on_missing_rule(self, instance):
        config = {"v1": "v2"}  # nothing beyond v2
        nodes, outcome, loop = _route_from(instance, config, ["v1"])
        assert outcome == BLACKHOLE
        assert nodes == ["v1", "v2"]


class TestSplitClass:
    def old_class(self, instance):
        return FlowClass(
            lo=None, hi=None,
            nodes=instance.old_path,
            offsets=tuple(range(len(instance.old_path))),
        )

    def test_unaffected_class_returns_none(self, instance):
        cls = self.old_class(instance)
        pieces = _split_class(
            instance, cls, {"zz"}, 0, instance.old_config, make_report()
        )
        assert pieces is None

    def test_split_partitions_emissions(self, instance):
        cls = self.old_class(instance)
        config = instance.config_at({"v2": 0}, 0)
        pieces = _split_class(instance, cls, {"v2"}, 0, config, make_report())
        assert pieces is not None
        keep, deflected = pieces
        # v2 sits at offset 1: emissions >= -1 deflect.
        assert (keep.lo, keep.hi) == (None, -2)
        assert (deflected.lo, deflected.hi) == (-1, None)
        assert deflected.nodes == ("v1", "v2", "v6")
        assert deflected.fresh_from == 1

    def test_threshold_beyond_interval_is_ignored(self, instance):
        cls = FlowClass(
            lo=0, hi=0,
            nodes=instance.old_path,
            offsets=tuple(range(len(instance.old_path))),
        )
        # Updating v5 at time 100: emission 0 passes v5 at t=4 < 100.
        config = instance.config_at({"v5": 100}, 100)
        pieces = _split_class(instance, cls, {"v5"}, 100, config, make_report())
        assert pieces is None

    def test_looped_class_not_extended_past_kill_point(self, instance):
        looped = FlowClass(
            lo=0, hi=5,
            nodes=("v1", "v2", "v3", "v4", "v3"),
            offsets=(0, 1, 2, 3, 4),
            outcome=LOOPED,
            loop_node="v3",
        )
        # Updating v3 (the final, revisited position) must not resurrect
        # the already-killed units...
        config = instance.config_at({"v3": 0}, 0)
        pieces = _split_class(instance, looped, {"v3"}, 0, config, make_report())
        # ...but the first v3 occurrence (offset 2) still deflects them.
        assert pieces is not None
        for piece in pieces:
            if piece.outcome == DELIVERED:
                assert piece.nodes[:3] == ("v1", "v2", "v3")

    def test_multiple_hits_partition_by_first_deflection(self, instance):
        cls = self.old_class(instance)
        config = instance.config_at({"v2": 0, "v4": 0}, 0)
        report = make_report()
        pieces = _split_class(instance, cls, {"v2", "v4"}, 0, config, report)
        # Three pieces: keep, deflect-at-v4 (older emissions), deflect-at-v2.
        assert len(pieces) == 3
        intervals = sorted((p.lo is None, p.lo, p.hi) for p in pieces)
        keep = [p for p in pieces if p.nodes == instance.old_path]
        assert len(keep) == 1
        assert keep[0].hi == -4  # emissions reaching v4 before t=0


class TestSweepLink:
    def test_disjoint_intervals_no_congestion(self):
        spans = _sweep_link(("a", "b"), 1.0, [(0, 4, 1.0), (5, 9, 1.0)], 0)
        assert spans == []

    def test_overlap_reports_span(self):
        spans = _sweep_link(("a", "b"), 1.0, [(0, 4, 1.0), (3, 9, 1.0)], 0)
        assert len(spans) == 1
        assert (spans[0].start, spans[0].end) == (3, 4)
        assert spans[0].load == pytest.approx(2.0)

    def test_demand_below_capacity_tolerated(self):
        spans = _sweep_link(("a", "b"), 2.0, [(0, 4, 1.0), (3, 9, 1.0)], 0)
        assert spans == []

    def test_open_ended_intervals_clamped(self):
        spans = _sweep_link(("a", "b"), 1.0, [(None, 5, 1.0), (3, None, 1.0)], 0)
        assert len(spans) == 1
        assert (spans[0].start, spans[0].end) == (3, 5)

    def test_heterogeneous_demands(self):
        spans = _sweep_link(
            ("a", "b"), 1.0, [(0, 9, 0.5), (2, 4, 0.4), (3, 3, 0.3)], 0
        )
        assert len(spans) == 1
        assert (spans[0].start, spans[0].end) == (3, 3)
        assert spans[0].load == pytest.approx(1.2)

    def test_single_oversized_interval(self):
        spans = _sweep_link(("a", "b"), 1.0, [(0, 2, 1.5)], 0)
        assert len(spans) == 1
        assert spans[0].load == pytest.approx(1.5)

    def test_span_clipped_at_t0(self):
        spans = _sweep_link(("a", "b"), 1.0, [(-5, 5, 1.0), (-5, 5, 1.0)], 0)
        assert len(spans) == 1
        assert spans[0].start == 0


class TestNodeIndexConsistency:
    def test_indexes_track_class_lifecycle(self, instance):
        tracker = IntervalTracker(instance)
        tracker.apply_round(["v2"], 0)
        tracker.apply_round(["v3"], 1)
        # Every alive class id referenced by the indexes must exist; every
        # alive class must be findable through its nodes and links.
        for cid in tracker._alive:
            cls = tracker._classes[cid]
            for node in cls.nodes:
                assert cid in tracker._node_index[node]
            for _, link in cls.links():
                assert cid in tracker._link_index[link]
