"""The fault-injection layer: plans, faulty channel, lateness, ablation."""

import random

import pytest

from repro.controller import (
    ConstantDelayModel,
    ControlChannel,
    Controller,
    perform_timed_update,
)
from repro.controller.messages import FlowModModify, next_xid
from repro.core.greedy import greedy_schedule
from repro.core.instance import motivating_example
from repro.experiments.faults_ablation import run_faults_ablation
from repro.faults import FaultPlan, FaultSpec, FaultyChannel, severity_spec
from repro.simulator import Simulator, build_dataplane
from repro.simulator.dataplane import install_config


class TestFaultSpec:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(crash_window=(5.0, 1.0))

    def test_benign_default(self):
        assert FaultSpec().benign
        assert not FaultSpec(drop_rate=0.1).benign

    def test_scaled_clamps_to_one(self):
        spec = FaultSpec(drop_rate=0.4, straggler_factor=8.0)
        scaled = spec.scaled(5.0)
        assert scaled.drop_rate == 1.0
        assert scaled.straggler_factor == 8.0  # magnitudes untouched

    def test_severity_zero_is_benign(self):
        assert severity_spec(0.0).benign

    def test_severity_drift_requires_bound(self):
        assert severity_spec(1.0).drift_rate == 0.0
        assert severity_spec(1.0, drift_bound=0.5).drift_rate > 0.0


class TestFaultPlanDeterminism:
    def test_message_stream_reproducible(self):
        spec = FaultSpec(drop_rate=0.3, duplicate_rate=0.2)
        a = FaultPlan(spec, seed=42)
        b = FaultPlan(spec, seed=42)
        draws_a = [(a.drop_message(), a.duplicate_message()) for _ in range(200)]
        draws_b = [(b.drop_message(), b.duplicate_message()) for _ in range(200)]
        assert draws_a == draws_b
        assert a.stats.dropped == b.stats.dropped > 0

    def test_switch_fates_independent_of_query_order(self):
        spec = FaultSpec(crash_rate=0.5, straggler_rate=0.5, drift_rate=0.5, drift_bound=0.4)
        names = [f"v{i}" for i in range(12)]
        a = FaultPlan(spec, seed=9)
        b = FaultPlan(spec, seed=9)
        fates_a = {n: a.switch_state(n).crashed_at for n in names}
        fates_b = {n: b.switch_state(n).crashed_at for n in reversed(names)}
        assert fates_a == fates_b

    def test_different_seeds_diverge(self):
        spec = FaultSpec(drop_rate=0.5)
        a = FaultPlan(spec, seed=1)
        b = FaultPlan(spec, seed=2)
        assert [a.drop_message() for _ in range(64)] != [
            b.drop_message() for _ in range(64)
        ]


class TestFaultyChannel:
    def deliveries(self, spec, sends=50, seed=0):
        sim = Simulator()
        plan = FaultPlan(spec, seed=seed)
        channel = FaultyChannel(
            sim, plan, network_delay=ConstantDelayModel(0.01), rng=random.Random(seed)
        )
        arrived = []
        for i in range(sends):
            channel.send(lambda i=i: arrived.append(i), key=("to", "v1"))
        sim.run(until=10.0)
        return arrived, plan

    def test_drop_everything(self):
        arrived, plan = self.deliveries(FaultSpec(drop_rate=1.0))
        assert arrived == []
        assert plan.stats.dropped == 50

    def test_duplicate_everything(self):
        arrived, plan = self.deliveries(FaultSpec(duplicate_rate=1.0), sends=10)
        assert sorted(arrived) == sorted(list(range(10)) * 2)
        assert plan.stats.duplicated == 10

    def test_benign_plan_matches_plain_channel(self):
        sim = Simulator()
        plain = ControlChannel(
            sim, network_delay=ConstantDelayModel(0.01), rng=random.Random(3)
        )
        faulty = FaultyChannel(
            sim,
            FaultPlan(FaultSpec(), seed=7),
            network_delay=ConstantDelayModel(0.01),
            rng=random.Random(3),
        )
        delays_plain = [plain.send(lambda: None, key="k") for _ in range(20)]
        delays_faulty = [faulty.send(lambda: None, key="k") for _ in range(20)]
        assert delays_plain == delays_faulty

    def test_duplicates_stay_fifo(self):
        sim = Simulator()
        plan = FaultPlan(FaultSpec(duplicate_rate=1.0), seed=0)
        channel = FaultyChannel(
            sim, plan, network_delay=ConstantDelayModel(0.01), rng=random.Random(0)
        )
        order = []
        channel.send(lambda: order.append("a"), key="k")
        channel.send(lambda: order.append("b"), key="k")
        sim.run(until=1.0)
        assert order == ["a", "a", "b", "b"]


def build_world():
    instance = motivating_example()
    sim = Simulator()
    plane = build_dataplane(sim, instance.network, delay_scale=1.0)
    install_config(plane, instance)
    channel = ControlChannel(
        sim,
        network_delay=ConstantDelayModel(0.001),
        install_delay=ConstantDelayModel(0.01),
        rng=random.Random(0),
    )
    controller = Controller(sim, channel)
    for switch in plane.switches.values():
        controller.manage(switch)
    plane.inject_flow(instance.source, "h1", str(instance.destination), rate=1.0)
    return instance, sim, plane, controller


class TestLateFlowMods:
    """Satellite: a past ``execute_at`` is recorded, not silently clamped."""

    def test_switch_records_lateness(self):
        instance, sim, plane, controller = build_world()
        sim.run(until=5.0)
        xid = next_xid()
        controller.send_flow_mod(
            "v2",
            FlowModModify(
                xid=xid, rule_name="f", out_port=plane.port_of("v2", "v6"),
                execute_at=2.0,  # three seconds in the past on arrival
            ),
        )
        sim.run(until=10.0)
        applied = controller.apply_time("v2", xid)
        assert applied is not None
        # Fires on arrival (network latency past `now`), not at 2.0.
        assert applied == pytest.approx(5.001, abs=1e-6)
        lateness = controller.lateness("v2", xid)
        assert lateness == pytest.approx(3.001, abs=1e-6)

    def test_on_time_flowmod_not_marked_late(self):
        instance, sim, plane, controller = build_world()
        xid = next_xid()
        controller.send_flow_mod(
            "v2",
            FlowModModify(
                xid=xid, rule_name="f", out_port=plane.port_of("v2", "v6"),
                execute_at=5.0,
            ),
        )
        sim.run(until=10.0)
        assert controller.apply_time("v2", xid) == pytest.approx(5.0)
        assert controller.lateness("v2", xid) is None

    def test_trace_surfaces_late_nodes(self):
        # A control network slower than the shipping lead time: every
        # scheduled FlowMod arrives after its execution instant.
        instance = motivating_example()
        sim = Simulator()
        plane = build_dataplane(sim, instance.network, delay_scale=1.0)
        install_config(plane, instance)
        channel = ControlChannel(
            sim,
            network_delay=ConstantDelayModel(10.0),
            install_delay=ConstantDelayModel(0.01),
            rng=random.Random(0),
        )
        controller = Controller(sim, channel)
        for switch in plane.switches.values():
            controller.manage(switch)
        schedule = greedy_schedule(instance).schedule
        trace = perform_timed_update(
            controller, plane, instance, schedule, time_unit=1.0
        )
        sim.run(until=60.0)
        assert set(trace.applied) == set(schedule.times)
        assert set(trace.late) == set(schedule.times)
        assert all(lateness > 0 for lateness in trace.late.values())


class TestFaultsAblation:
    def test_smoke_and_invariants(self):
        result = run_faults_ablation(
            severities=(0.0, 1.0), instances_per_point=2
        )
        assert len(result.records) == 2 * 2 * 3
        assert result.oracle_ok

        benign = [r for r in result.records if r.severity == 0.0]
        assert all(r.completed and not r.aborted for r in benign)
        assert all(r.retries == 0 and r.rolled_back == 0 for r in benign)
        # Chronus on a perfect network never violates consistency.
        assert all(
            not r.violated for r in benign if r.scheme == "chronus"
        )
        # Completed runs carry an oracle verdict (the integer grid held).
        completed = [r for r in result.records if r.completed]
        assert all(r.verdict_ok is not None and not r.off_grid for r in completed)

    def test_deterministic(self):
        kwargs = dict(severities=(0.5,), instances_per_point=2)
        assert (
            run_faults_ablation(**kwargs).records
            == run_faults_ablation(**kwargs).records
        )

    def test_render_mentions_every_scheme(self):
        result = run_faults_ablation(severities=(0.0,), instances_per_point=1)
        text = result.render()
        for scheme in ("chronus", "or", "tp"):
            assert scheme in text
        assert "oracle cross-check" in text

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            run_faults_ablation(schemes=("chronus", "nope"))
