"""Copy-on-write index + tracker-snapshot correctness.

Two layers of assurance: unit tests pin :class:`repro.core.cow.CowIndex`'s
snapshot isolation down exactly, and a 200+-instance sweep cross-validates
the COW interval tracker against the quadratic unit tracer oracle
(:mod:`repro.core.trace`) -- the structural sharing must never change a
single verdict.
"""

import random

import pytest

from repro.core.cow import CowIndex
from repro.core.greedy import greedy_schedule
from repro.core.instance import random_instance, segmented_instance
from repro.core.intervals import IntervalTracker, replay_schedule
from repro.core.trace import trace_schedule
from repro.updates.order_replacement import (
    greedy_loop_free_rounds,
    realize_round_times,
)


class TestCowIndex:
    def test_add_and_get(self):
        index = CowIndex()
        index.add("a", 1)
        index.add("a", 2)
        index.add("b", 3)
        assert list(index.get("a")) == [1, 2]
        assert list(index["b"]) == [3]
        assert index.get("missing") == ()
        assert "a" in index and "missing" not in index
        assert sorted(index) == ["a", "b"]
        assert len(index) == 2

    def test_add_all_matches_repeated_add(self):
        batch = CowIndex()
        batch.add_all(["x", "y", "x"], 7)
        single = CowIndex()
        for key in ["x", "y", "x"]:
            single.add(key, 7)
        assert {k: list(batch[k]) for k in batch} == {
            k: list(single[k]) for k in single
        }

    def test_snapshot_sees_current_state(self):
        index = CowIndex()
        index.add("a", 1)
        snap = index.snapshot()
        assert list(snap["a"]) == [1]
        assert len(snap) == 1

    def test_append_after_snapshot_does_not_leak_into_snapshot(self):
        index = CowIndex()
        index.add("a", 1)
        snap = index.snapshot()
        index.add("a", 2)
        index.add("b", 3)
        assert list(index["a"]) == [1, 2]
        assert list(snap.get("a")) == [1]
        assert "b" not in snap

    def test_append_to_snapshot_does_not_leak_back(self):
        index = CowIndex()
        index.add("a", 1)
        snap = index.snapshot()
        snap.add("a", 99)
        assert list(index["a"]) == [1]
        assert list(snap["a"]) == [1, 99]

    def test_snapshot_of_snapshot_chain_is_isolated(self):
        root = CowIndex()
        root.add("k", 0)
        a = root.snapshot()
        b = a.snapshot()
        a.add("k", 1)
        b.add("k", 2)
        root.add("k", 3)
        assert list(root["k"]) == [0, 3]
        assert list(a["k"]) == [0, 1]
        assert list(b["k"]) == [0, 2]

    def test_owner_appends_in_place_between_snapshots(self):
        index = CowIndex()
        index.add("a", 1)
        values = index["a"]
        index.add("a", 2)  # still owned: must append in place, no copy
        assert index["a"] is values


class TestTrackerCloneIsolation:
    def _tracker(self, count=12, seed=3):
        instance = random_instance(count, seed=seed)
        return instance, IntervalTracker(instance)

    def test_child_rounds_leave_parent_untouched(self):
        instance, parent = self._tracker()
        pending = list(instance.switches_to_update)
        before = (
            dict(parent.applied),
            parent.congestion_spans(),
            parent.finite_drain_horizon(),
        )
        child = parent.clone()
        child.apply_round(pending[:2], 0)
        child.apply_round(pending[2:3], 1)
        after = (
            dict(parent.applied),
            parent.congestion_spans(),
            parent.finite_drain_horizon(),
        )
        assert before == after

    def test_sibling_clones_diverge_independently(self):
        instance, parent = self._tracker(count=10, seed=11)
        pending = list(instance.switches_to_update)
        left = parent.clone()
        right = parent.clone()
        left.apply_round(pending[:1], 0)
        right.apply_round(pending[-1:], 0)
        assert set(left.applied) == {pending[0]}
        assert set(right.applied) == {pending[-1]}
        assert parent.applied == {}

    def test_clone_previews_match_original(self):
        instance, tracker = self._tracker(count=9, seed=21)
        pending = list(instance.switches_to_update)
        clone = tracker.clone()
        for node in pending:
            assert (
                tracker.preview_round([node], 0).ok
                == clone.preview_round([node], 0).ok
            )


class TestTrackerMatchesUnitTracer:
    """COW tracker vs. the quadratic oracle on a broad instance sweep."""

    def _assert_verdicts_agree(self, instance, schedule):
        oracle = trace_schedule(instance, schedule)
        tracker = replay_schedule(instance, schedule)
        assert bool(oracle.loops) == bool(tracker.loops)
        assert bool(oracle.blackholes) == bool(tracker.blackholes)
        assert bool(oracle.congestion) == bool(tracker.congestion_spans())

    @pytest.mark.parametrize("base", range(10))
    def test_greedy_schedules_agree_on_random_instances(self, base):
        # 10 x 15 = 150 random two-path instances, greedy schedules.
        for offset in range(15):
            seed = base * 1013 + offset
            instance = random_instance(4 + (seed % 7), seed=seed)
            result = greedy_schedule(instance)
            self._assert_verdicts_agree(instance, result.schedule)

    @pytest.mark.parametrize("base", range(5))
    def test_or_realizations_agree_on_random_instances(self, base):
        # 5 x 12 = 60 more instances, round-based schedules with skew --
        # these exercise congested and loopy trajectories, not just the
        # clean greedy ones.
        for offset in range(12):
            seed = base * 727 + offset + 1
            instance = random_instance(4 + (seed % 6), seed=seed)
            rounds = greedy_loop_free_rounds(instance)
            schedule = realize_round_times(
                rounds, rng=random.Random(seed), max_skew=2
            )
            self._assert_verdicts_agree(instance, schedule)

    def test_segmented_instances_agree(self):
        # Locally-rerouted workload (the Fig. 10/11 shape), 20 instances.
        for seed in range(20):
            instance = segmented_instance(24, seed=seed, segments=2)
            result = greedy_schedule(instance)
            self._assert_verdicts_agree(instance, result.schedule)
