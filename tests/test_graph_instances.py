"""Tests for instances generated on arbitrary graphs (fat tree, Waxman)."""

import random

import pytest

from repro.core.greedy import greedy_schedule
from repro.core.mutp import solve_mutp
from repro.core.optimal import optimal_schedule
from repro.core.trace import trace_schedule
from repro.network.topology import fat_tree_topology, waxman_topology
from repro.planning import random_reroute_instance


class TestGeneratorOnFatTree:
    def test_produces_valid_instances(self):
        net = fat_tree_topology(4)
        instance = random_reroute_instance(
            net, "edge0_0", "edge3_1", rng=random.Random(1)
        )
        assert instance is not None
        assert instance.old_path != instance.new_path
        assert instance.old_path[0] == instance.new_path[0] == "edge0_0"

    @pytest.mark.parametrize("seed", range(6))
    def test_schedulers_handle_fabric_instances(self, seed):
        net = fat_tree_topology(4)
        rng = random.Random(seed)
        edges = [n for n in net.switches if n.startswith("edge")]
        src, dst = rng.sample(edges, 2)
        instance = random_reroute_instance(net, src, dst, rng=rng)
        if instance is None:
            pytest.skip("no reroute for this pair")
        result = greedy_schedule(instance)
        assert trace_schedule(instance, result.schedule).ok == result.feasible

    def test_too_short_path_returns_none(self):
        net = fat_tree_topology(4)
        # Adjacent switches: the shortest path has no transit node.
        assert random_reroute_instance(net, "edge0_0", "agg0_0") is None


class TestGeneratorOnWaxman:
    @pytest.mark.parametrize("seed", range(5))
    def test_instances_are_consistent_when_feasible(self, seed):
        net = waxman_topology(25, rng=random.Random(100 + seed), alpha=0.7, beta=0.7)
        instance = random_reroute_instance(net, "v1", "v25", rng=random.Random(seed))
        if instance is None:
            pytest.skip("disconnected or no alternative route")
        result = greedy_schedule(instance)
        oracle = trace_schedule(instance, result.schedule)
        assert result.feasible == oracle.ok


class TestMutpCrossValidation:
    """Program (3)'s ILP agrees with the OPT search, including on graphs
    with non-uniform delays."""

    @pytest.mark.parametrize("seed", range(6))
    def test_ilp_matches_search(self, seed):
        from repro.core.instance import random_instance

        instance = random_instance(5, seed=700 + seed, max_delay=2)
        opt = optimal_schedule(instance, time_budget=15)
        if not opt.proven:
            pytest.skip("OPT budget exhausted")
        if opt.schedule is None:
            schedule, result = solve_mutp(instance, horizon=6, time_budget=30)
            assert schedule is None
            assert result.status == "infeasible"
        elif opt.makespan == 0:
            pytest.skip("nothing to update (identical paths)")
        else:
            schedule, result = solve_mutp(
                instance, horizon=opt.makespan, time_budget=30
            )
            assert result.status == "optimal"
            assert schedule.makespan == opt.makespan
            assert trace_schedule(instance, schedule).ok
            if opt.makespan > 1:
                below, result_below = solve_mutp(
                    instance, horizon=opt.makespan - 1, time_budget=30
                )
                assert below is None  # the optimum really is the minimum
