"""Unit tests for the discrete-event fluid data plane."""

import pytest

from repro.core.instance import motivating_example
from repro.simulator import (
    BandwidthMonitor,
    DataLink,
    FlowRule,
    FlowTable,
    Match,
    PacketContext,
    Simulator,
    build_dataplane,
)
from repro.simulator.dataplane import install_config
from repro.simulator.events import EventQueue
from repro.simulator.switch import HOST_PORT


class TestEventQueue:
    def test_fifo_at_equal_times(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append("a"))
        queue.push(1.0, lambda: order.append("b"))
        queue.pop().callback()
        queue.pop().callback()
        assert order == ["a", "b"]

    def test_cancellation(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.cancel(handle)
        assert queue.pop() is None
        assert not queue


class TestSimulator:
    def test_runs_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(2.0, lambda: seen.append(2.0))
        sim.schedule_at(1.0, lambda: seen.append(1.0))
        sim.run()
        assert seen == [1.0, 2.0]
        assert sim.now == 2.0

    def test_until_advances_clock(self):
        sim = Simulator()
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(1.0, lambda: sim.schedule_after(1.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [2.0]


class TestFlowTable:
    def test_priority_wins(self):
        table = FlowTable()
        table.add(FlowRule("low", Match(dst_prefix="d"), out_port=1, priority=0))
        table.add(FlowRule("high", Match(dst_prefix="d", tag=2), out_port=2, priority=5))
        tagged = PacketContext(in_port=1, src_prefix="s", dst_prefix="d", tag=2)
        plain = PacketContext(in_port=1, src_prefix="s", dst_prefix="d")
        assert table.lookup(tagged).name == "high"
        assert table.lookup(plain).name == "low"

    def test_miss_returns_none(self):
        table = FlowTable()
        context = PacketContext(in_port=1, src_prefix="s", dst_prefix="d")
        assert table.lookup(context) is None

    def test_modify_rewrites_action(self):
        table = FlowTable()
        table.add(FlowRule("r", Match(dst_prefix="d"), out_port=1))
        table.modify("r", out_port=7)
        assert table.rules[0].out_port == 7
        assert table.occupancy == 1

    def test_delete(self):
        table = FlowTable()
        table.add(FlowRule("r", Match(), out_port=1))
        table.delete("r")
        assert table.occupancy == 0
        with pytest.raises(KeyError):
            table.delete("r")

    def test_duplicate_rule_name_rejected(self):
        table = FlowTable()
        table.add(FlowRule("r", Match(), out_port=1))
        with pytest.raises(ValueError):
            table.add(FlowRule("r", Match(), out_port=2))

    def test_in_port_matching(self):
        table = FlowTable()
        table.add(FlowRule("host", Match(in_port=HOST_PORT), out_port=3))
        from_host = PacketContext(in_port=HOST_PORT, src_prefix="s", dst_prefix="d")
        from_wire = PacketContext(in_port=2, src_prefix="s", dst_prefix="d")
        assert table.lookup(from_host) is not None
        assert table.lookup(from_wire) is None

    def test_render_table2_layout(self):
        table = FlowTable()
        table.add(FlowRule("r", Match(dst_prefix="v12"), out_port=1))
        rows = table.render()
        assert "InPort" in rows[0] and "Output:1" in rows[1]


class TestDataPlane:
    def build(self):
        instance = motivating_example()
        sim = Simulator()
        plane = build_dataplane(sim, instance.network, delay_scale=1.0)
        install_config(plane, instance)
        return instance, sim, plane

    def test_steady_state_flow_delivery(self):
        instance, sim, plane = self.build()
        plane.inject_flow("v1", "h1", "v6", rate=1.0)
        sim.run(until=10.0)
        assert plane.switch("v6").delivered == pytest.approx(1.0)
        assert plane.total_blackholed() == 0.0

    def test_rate_propagates_with_link_delays(self):
        instance, sim, plane = self.build()
        plane.inject_flow("v1", "h1", "v6", rate=1.0)
        sim.run(until=2.5)  # delay v1->..->v6 is 5 seconds
        assert plane.switch("v6").delivered == 0.0
        sim.run(until=5.5)
        assert plane.switch("v6").delivered == pytest.approx(1.0)

    def test_rule_change_reroutes_traffic(self):
        instance, sim, plane = self.build()
        plane.inject_flow("v1", "h1", "v6", rate=1.0)
        sim.run(until=10.0)
        switch = plane.switch("v2")
        switch.table.modify(instance.flow.name, out_port=plane.port_of("v2", "v6"))
        switch.on_table_changed()
        sim.run(until=20.0)
        assert plane.link("v2", "v6").utilization == pytest.approx(1.0)
        assert plane.link("v2", "v3").utilization == 0.0
        assert plane.switch("v6").delivered == pytest.approx(1.0)

    def test_byte_counters_integrate_rates(self):
        instance, sim, plane = self.build()
        plane.inject_flow("v1", "h1", "v6", rate=2.0)
        sim.run(until=11.0)
        link = plane.link("v1", "v2")
        # 2 Mbps since t=0 -> 20 Mbit by t=10.
        assert link.byte_counter(10.0) == pytest.approx(20.0)

    def test_monitor_measures_bandwidth(self):
        instance, sim, plane = self.build()
        monitor = BandwidthMonitor(plane, interval=1.0, links=[("v1", "v2")])
        monitor.start()
        plane.inject_flow("v1", "h1", "v6", rate=1.5)
        sim.run(until=5.5)
        series = monitor.link_series("v1", "v2")
        assert series
        assert series[-1].mbps == pytest.approx(1.5)

    def test_congested_seconds(self):
        instance, sim, plane = self.build()
        plane.inject_flow("v1", "h1", "v6", rate=1.0)
        plane.inject_flow("v1", "h2", "v6", rate=1.0)
        sim.run(until=4.0)
        assert plane.link("v1", "v2").congested_seconds() == pytest.approx(4.0)
        assert plane.link("v1", "v2").peak_utilization() == pytest.approx(2.0)


class TestPeakUtilizationWindow:
    """Regressions for ``peak_utilization(since)`` window clipping."""

    def build(self):
        instance = motivating_example()
        sim = Simulator()
        plane = build_dataplane(sim, instance.network, delay_scale=1.0)
        install_config(plane, instance)
        return instance, sim, plane

    def test_future_window_is_empty(self):
        """A window starting after `now` must report zero, not the final rate."""
        instance, sim, plane = self.build()
        plane.inject_flow("v1", "h1", "v6", rate=2.0)
        sim.run(until=5.0)
        link = plane.link("v1", "v2")
        assert link.utilization == pytest.approx(2.0)
        assert link.peak_utilization(since=10.0) == 0.0

    def test_straddling_interval_counts(self):
        """A rate set before `since` but still active inside the window counts."""
        instance, sim, plane = self.build()
        plane.inject_flow("v1", "h1", "v6", rate=1.5)  # breakpoint at t=0
        sim.run(until=8.0)
        link = plane.link("v1", "v2")
        # The t=0 segment straddles since=4 (it runs to `now`), so the
        # window [4, 8] sees the full 1.5 Mbps.
        assert link.peak_utilization(since=4.0) == pytest.approx(1.5)

    def test_window_excludes_finished_segments(self):
        """Segments that end before `since` stay out of the window."""
        instance, sim, plane = self.build()
        plane.inject_flow("v1", "h1", "v6", rate=3.0)
        sim.run(until=4.0)
        plane.switches["v1"].receive(
            PacketContext(in_port=HOST_PORT, src_prefix="h1", dst_prefix="v6"),
            rate=0.5,
        )
        sim.run(until=10.0)
        link = plane.link("v1", "v2")
        assert link.peak_utilization() == pytest.approx(3.0)  # full history
        assert link.peak_utilization(since=6.0) == pytest.approx(0.5)

    def test_exactly_now_window(self):
        instance, sim, plane = self.build()
        plane.inject_flow("v1", "h1", "v6", rate=1.0)
        sim.run(until=3.0)
        link = plane.link("v1", "v2")
        assert link.peak_utilization(since=3.0) == pytest.approx(1.0)


class TestMonitorStop:
    """Regression: the poll loop must stop rescheduling once stopped."""

    def build(self):
        instance = motivating_example()
        sim = Simulator()
        plane = build_dataplane(sim, instance.network, delay_scale=1.0)
        install_config(plane, instance)
        return instance, sim, plane

    def test_stop_drains_event_queue(self):
        instance, sim, plane = self.build()
        plane.inject_flow("v1", "h1", "v6", rate=1.0)
        monitor = BandwidthMonitor(plane, interval=1.0, links=[("v1", "v2")])
        monitor.start()
        sim.run(until=5.5)
        monitor.stop()
        # An open-ended run must now drain instead of polling forever and
        # tripping the max_events safety valve.
        processed = sim.run(max_events=50)
        assert processed < 50
        assert len(monitor.link_series("v1", "v2")) == 5

    def test_stop_is_idempotent_and_restartable(self):
        instance, sim, plane = self.build()
        monitor = BandwidthMonitor(plane, interval=1.0, links=[("v1", "v2")])
        monitor.start()
        sim.run(until=2.5)
        monitor.stop()
        monitor.stop()  # no-op
        sim.run(until=4.5)
        assert len(monitor.link_series("v1", "v2")) == 2  # nothing polled late
        monitor.start()  # allowed again after a stop
        sim.run(until=7.0)
        assert len(monitor.link_series("v1", "v2")) == 4

    def test_double_start_rejected(self):
        instance, sim, plane = self.build()
        monitor = BandwidthMonitor(plane, interval=1.0)
        monitor.start()
        with pytest.raises(RuntimeError):
            monitor.start()

    def test_restart_rebaselines_counters(self):
        """The first sample after a restart must not integrate the gap.

        Traffic keeps flowing while the monitor is stopped; ``start`` must
        re-read the byte counters so the gap's volume is not folded into
        the first post-restart interval's rate.
        """
        instance, sim, plane = self.build()
        plane.inject_flow("v1", "h1", "v6", rate=2.0)
        monitor = BandwidthMonitor(plane, interval=1.0, links=[("v1", "v2")])
        monitor.start()
        sim.run(until=3.5)
        monitor.stop()
        sim.run(until=8.0)  # 4.5 unmonitored seconds at 2 Mbps
        monitor.start()
        sim.run(until=10.5)
        series = monitor.link_series("v1", "v2")
        assert len(series) == 5  # 3 before the gap + 2 after
        # Every sample reads the steady rate; the 9 Mbit gap volume never
        # shows up as a spike.
        assert all(s.mbps == pytest.approx(2.0) for s in series)
        assert series[3].time == pytest.approx(9.0)

    def test_restart_after_rate_change_measures_new_rate(self):
        instance, sim, plane = self.build()
        plane.inject_flow("v1", "h1", "v6", rate=3.0)
        monitor = BandwidthMonitor(plane, interval=1.0, links=[("v1", "v2")])
        monitor.start()
        sim.run(until=2.5)
        monitor.stop()
        plane.switches["v1"].receive(
            PacketContext(in_port=HOST_PORT, src_prefix="h1", dst_prefix="v6"),
            rate=0.5,
        )
        sim.run(until=6.0)
        monitor.start()
        sim.run(until=8.5)
        series = monitor.link_series("v1", "v2")
        assert [s.mbps for s in series[:2]] == [pytest.approx(3.0)] * 2
        assert [s.mbps for s in series[-2:]] == [pytest.approx(0.5)] * 2
