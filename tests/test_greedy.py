"""Unit and property tests for Algorithm 2 (the greedy scheduler)."""

import pytest

from repro.core.greedy import EXACT, PAPER, greedy_schedule
from repro.core.instance import (
    random_instance,
    reversal_instance,
    segmented_instance,
)
from repro.core.trace import is_complete, trace_schedule


class TestMotivatingExample:
    def test_finds_a_four_step_schedule(self, fig1_instance):
        result = greedy_schedule(fig1_instance)
        assert result.feasible
        assert result.schedule.makespan == 4
        assert trace_schedule(fig1_instance, result.schedule).ok

    def test_first_round_is_v2_only(self, fig1_instance):
        # The paper: "the dependency relation set at t0 is ... where we can
        # only update v2" (v3 would loop).
        result = greedy_schedule(fig1_instance)
        rounds = result.schedule.rounds()
        assert "v2" in rounds[0][1]
        assert "v3" not in rounds[0][1]
        assert "v4" not in rounds[0][1]
        assert "v5" not in rounds[0][1]

    def test_paper_mode_matches_exact_mode_here(self, fig1_instance):
        exact = greedy_schedule(fig1_instance, mode=EXACT)
        paper = greedy_schedule(fig1_instance, mode=PAPER)
        assert exact.schedule.as_dict() == paper.schedule.as_dict()

    def test_dependency_log(self, fig1_instance):
        result = greedy_schedule(fig1_instance, keep_dependency_log=True)
        assert result.dependency_log
        assert result.dependency_log[0][0] == 0

    def test_invalid_mode_rejected(self, fig1_instance):
        with pytest.raises(ValueError):
            greedy_schedule(fig1_instance, mode="wat")

    def test_t0_offset_respected(self, fig1_instance):
        result = greedy_schedule(fig1_instance, t0=10)
        assert result.schedule.t0 == 10
        assert min(result.schedule.times.values()) >= 10
        assert trace_schedule(fig1_instance, result.schedule).ok


class TestFeasibilityReporting:
    def test_infeasible_instance_is_flagged_and_completed(self, shortcut_instance):
        result = greedy_schedule(shortcut_instance)
        assert not result.feasible
        assert result.stalled_at is not None
        assert is_complete(shortcut_instance, result.schedule)
        assert not result.schedule.feasible

    def test_feasible_instance_has_clean_tracker(self, tiny_instance):
        result = greedy_schedule(tiny_instance)
        assert result.feasible
        assert result.violations == []


class TestAdversarialReversal:
    @pytest.mark.parametrize("count", [4, 6, 8, 10])
    def test_reversal_instances_scheduled_consistently(self, count):
        instance = reversal_instance(count)
        result = greedy_schedule(instance)
        assert trace_schedule(instance, result.schedule).ok == result.feasible
        assert is_complete(instance, result.schedule)


class TestRandomInstances:
    @pytest.mark.parametrize("seed", range(30))
    def test_claim_matches_oracle(self, seed):
        instance = random_instance(4 + seed % 8, seed=seed)
        result = greedy_schedule(instance)
        oracle = trace_schedule(instance, result.schedule)
        assert result.feasible == oracle.ok
        assert is_complete(instance, result.schedule)

    @pytest.mark.parametrize("seed", range(10))
    def test_paper_mode_is_loop_free(self, seed):
        """Theorem 3: Algorithm 4 guarantees loop-freedom in paper mode."""
        instance = random_instance(4 + seed % 8, seed=100 + seed)
        result = greedy_schedule(instance, mode=PAPER)
        oracle = trace_schedule(instance, result.schedule)
        if result.feasible:
            assert oracle.loop_free

    @pytest.mark.parametrize("seed", range(10))
    def test_segmented_instances_always_feasible(self, seed):
        instance = segmented_instance(30, seed=seed, segments=2, max_segment_length=6)
        result = greedy_schedule(instance)
        assert result.feasible
        assert trace_schedule(instance, result.schedule).ok


class TestDeterminism:
    def test_same_instance_same_schedule(self):
        instance = random_instance(9, seed=77)
        a = greedy_schedule(instance)
        b = greedy_schedule(instance)
        assert a.schedule.as_dict() == b.schedule.as_dict()
