"""Shared fixtures for the test suite."""

import pytest

from repro.core.instance import (
    instance_from_paths,
    motivating_example,
    random_instance,
)
from repro.core.schedule import UpdateSchedule
from repro.network.graph import Network


@pytest.fixture
def fig1_instance():
    """The paper's Fig. 1 six-switch motivating example."""
    return motivating_example()


@pytest.fixture
def paper_schedule():
    """The timed sequence of Fig. 1(e)-(h): v2@t0, v3@t1, {v1,v4}@t2, v5@t3."""
    return UpdateSchedule(
        {"v2": 0, "v3": 1, "v1": 2, "v4": 2, "v5": 3}, start_time=0
    )


@pytest.fixture
def tiny_instance():
    """A four-switch instance with one slow detour (always feasible)."""
    net = Network()
    for src, dst, delay in [
        ("a", "b", 1),
        ("b", "c", 1),
        ("c", "d", 1),
        ("a", "c", 3),
    ]:
        net.add_link(src, dst, capacity=1.0, delay=delay)
    return instance_from_paths(net, ["a", "b", "c", "d"], ["a", "c", "d"])


@pytest.fixture
def shortcut_instance():
    """A four-switch instance with a fast shortcut (provably infeasible).

    The new path reaches the shared link (c, d) one step earlier than the
    old path's in-flight traffic, so some emission pair always collides.
    """
    net = Network()
    for src, dst, delay in [
        ("a", "b", 1),
        ("b", "c", 1),
        ("c", "d", 1),
        ("a", "c", 1),
    ]:
        net.add_link(src, dst, capacity=1.0, delay=delay)
    return instance_from_paths(net, ["a", "b", "c", "d"], ["a", "c", "d"])
