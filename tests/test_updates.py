"""Unit tests for the update protocols (Chronus, TP, OR, OPT)."""

import random

import pytest

from repro.analysis.metrics import evaluate_schedule
from repro.core.instance import random_instance
from repro.core.rounds import rounds_are_loop_free
from repro.core.trace import trace_schedule
from repro.updates import (
    ChronusProtocol,
    OptimalProtocol,
    OrderReplacementProtocol,
    TwoPhaseProtocol,
    minimize_rounds,
    realize_round_times,
    two_phase_congestion_spans,
)


class TestChronusProtocol:
    def test_plan_is_consistent(self, fig1_instance):
        plan = ChronusProtocol().plan(fig1_instance)
        assert plan.feasible
        assert trace_schedule(fig1_instance, plan.schedule).ok

    def test_rule_accounting_only_modifies(self, fig1_instance):
        plan = ChronusProtocol().plan(fig1_instance)
        # All five switches have old rules: pure in-place modifications.
        assert plan.rules.modifies == 5
        assert plan.rules.installs == 0
        assert plan.rules.deletes == 0
        assert plan.rules.headroom == 0

    def test_infeasible_instance_noted(self, shortcut_instance):
        plan = ChronusProtocol().plan(shortcut_instance)
        assert not plan.feasible
        assert "best-effort" in plan.notes

    def test_install_counted_for_new_switches(self):
        from repro.core.instance import instance_from_paths
        from repro.network.graph import network_from_links

        net = network_from_links(
            [("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")], delay=2
        )
        instance = instance_from_paths(net, ["a", "b", "d"], ["a", "c", "d"])
        plan = ChronusProtocol().plan(instance)
        assert plan.rules.installs == 1  # c
        assert plan.rules.modifies == 1  # a
        assert plan.rules.headroom == 1


class TestTwoPhaseProtocol:
    def test_rule_overhead_doubles_tables(self, fig1_instance):
        plan = TwoPhaseProtocol().plan(fig1_instance)
        baseline = plan.rules.baseline_rules
        assert plan.rules.peak_rules >= 2 * baseline
        assert plan.rules.deletes == baseline

    def test_operations_count(self, fig1_instance):
        plan = TwoPhaseProtocol().plan(fig1_instance)
        # installs (5 union switches + the ingress stamp) + 5 deletes
        assert plan.rules.operations == 5 + 1 + 5

    def test_fig1_has_no_overtaking(self, fig1_instance):
        assert two_phase_congestion_spans(fig1_instance, flip_time=0) == []
        assert TwoPhaseProtocol().plan(fig1_instance).feasible

    def test_shortcut_overtakes(self, shortcut_instance):
        spans = two_phase_congestion_spans(shortcut_instance, flip_time=5)
        assert len(spans) == 1
        span = spans[0]
        assert span.link == ("c", "d")
        assert span.load == pytest.approx(2.0)
        # off_new=1, off_old=2: exactly one overlapping departure step.
        assert (span.start, span.end) == (6, 6)

    def test_flip_delay_validation(self):
        with pytest.raises(ValueError):
            TwoPhaseProtocol(flip_delay=0)

    def test_two_rounds(self, fig1_instance):
        plan = TwoPhaseProtocol().plan(fig1_instance)
        assert plan.round_count == 2
        assert plan.rounds[1][1] == (fig1_instance.source,)


class TestOrderReplacement:
    def test_rounds_are_loop_free(self, fig1_instance):
        plan = OrderReplacementProtocol(rng=random.Random(1)).plan(fig1_instance)
        rounds = [list(nodes) for _, nodes in plan.rounds]
        assert rounds_are_loop_free(fig1_instance, rounds)

    def test_exact_never_more_rounds_than_greedy(self):
        for seed in range(6):
            instance = random_instance(8, seed=seed)
            exact = minimize_rounds(instance, time_budget=5)
            greedy = OrderReplacementProtocol(exact=False).plan(instance)
            if exact.proven:
                assert exact.round_count <= greedy.round_count

    def test_fig1_minimum_is_three_rounds(self, fig1_instance):
        result = minimize_rounds(fig1_instance, time_budget=10)
        assert result.proven
        assert result.round_count == 3

    def test_realize_respects_barriers(self):
        rounds = [["a", "b"], ["c"], ["d", "e"]]
        realized = realize_round_times(rounds, rng=random.Random(2), max_skew=3)
        times = realized.as_dict()
        assert max(times["a"], times["b"]) < times["c"]
        assert times["c"] < min(times["d"], times["e"])

    def test_realized_schedule_flagged_unverified(self):
        realized = realize_round_times([["a"]], rng=random.Random(0))
        assert not realized.feasible

    def test_capacity_obliviousness_congests(self, fig1_instance):
        # Across several realisations, OR's schedule congests at least once
        # (the Fig. 6/7 phenomenon).
        protocol = OrderReplacementProtocol(rng=random.Random(3))
        plan = protocol.plan(fig1_instance)
        congested = 0
        for seed in range(6):
            realized = realize_round_times(
                [list(nodes) for _, nodes in plan.rounds],
                rng=random.Random(seed),
                max_skew=3,
            )
            metrics = evaluate_schedule(fig1_instance, realized)
            congested += not metrics.congestion_free
        assert congested > 0


class TestOptimalProtocol:
    def test_plan_matches_opt(self, fig1_instance):
        plan = OptimalProtocol(time_budget=20).plan(fig1_instance)
        assert plan.feasible
        assert plan.makespan == 4
        assert trace_schedule(fig1_instance, plan.schedule).ok

    def test_infeasible_falls_back_to_rounds(self, shortcut_instance):
        plan = OptimalProtocol(time_budget=20).plan(shortcut_instance)
        assert not plan.feasible
        assert "no congestion-free schedule" in plan.notes
        assert len(plan.schedule) == len(shortcut_instance.switches_to_update)
