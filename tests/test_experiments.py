"""Integration tests: every experiment module runs and shows the paper's shape.

Tiny scales keep the suite fast; the assertions target the *direction* of
each result (who wins), not absolute numbers.
"""

import pytest

from repro.experiments import fig6, fig7, fig8, fig9, fig10, fig11, table2
from repro.experiments.sweep import (
    local_reroute_share,
    mixed_instance,
    run_instance,
)


class TestTable2:
    def test_tables_render(self):
        result = table2.run_table2(switch_count=8, seed=2)
        text = result.render()
        assert "InPort" in text
        assert "Output" in text
        # The two-phase transition keeps both rule versions resident.
        assert len(result.source_rows_two_phase) > len(result.source_rows)


class TestFig6:
    def test_or_congests_while_chronus_stays_within_capacity(self):
        result = fig6.run_fig6(duration=25.0)
        assert result.peaks["chronus"] <= result.capacity + 1e-6
        assert result.peaks["or"] > result.capacity + 1e-6
        assert "Fig. 6" in result.render()

    def test_series_cover_all_schemes(self):
        result = fig6.run_fig6(duration=12.0)
        assert set(result.series) == {"chronus", "tp", "or"}
        assert all(points for points in result.series.values())


class TestSweep:
    def test_mixed_workload_is_reproducible(self):
        a = mixed_instance(20, seed=9)
        b = mixed_instance(20, seed=9)
        assert a.new_path == b.new_path

    def test_local_share_decreases_with_size(self):
        assert local_reroute_share(10) > local_reroute_share(60)
        assert 0.0 < local_reroute_share(1000) <= 1.0

    def test_run_instance_produces_all_schemes(self, fig1_instance):
        outcomes = run_instance(fig1_instance, seed=1, opt_budget=5.0)
        assert set(outcomes) == {"chronus", "or", "opt"}
        assert outcomes["chronus"].congestion_free
        assert outcomes["opt"].congestion_free

    def test_run_instance_without_verify_leaves_flag_unset(self, fig1_instance):
        outcomes = run_instance(fig1_instance, seed=1, opt_budget=5.0)
        assert all(o.verifier_agrees is None for o in outcomes.values())

    def test_run_instance_verify_flags_conformance(self, fig1_instance):
        outcomes = run_instance(
            fig1_instance, seed=1, opt_budget=5.0, verify=True
        )
        assert all(o.verifier_agrees is True for o in outcomes.values())

    def test_sweep_threads_verify_flag(self):
        from repro.experiments.sweep import run_sweep

        records = run_sweep(
            [10],
            instances_per_size=3,
            schemes=("chronus", "or"),
            opt_node_budget=5_000,
            or_node_budget=5_000,
            verify=True,
        )
        flags = [
            outcome.verifier_agrees
            for record in records
            for outcome in record.outcomes.values()
        ]
        assert flags and all(flag is True for flag in flags)


@pytest.mark.slow
class TestFig7:
    def test_chronus_at_least_matches_or(self):
        result = fig7.run_fig7(
            switch_counts=(10, 30), instances_per_size=4, opt_budget=0.3
        )
        for index in range(2):
            assert (
                result.percentages["chronus"][index]
                >= result.percentages["or"][index]
            )
        assert "Fig. 7" in result.render()


@pytest.mark.slow
class TestFig8:
    def test_chronus_congests_fewer_timed_links(self):
        result = fig8.run_fig8(switch_counts=(30,), instances_per_size=5)
        assert result.congested["chronus"][0] <= result.congested["or"][0]
        assert "Fig. 8" in result.render()


class TestFig9:
    def test_chronus_saves_over_half_the_rules(self):
        result = fig9.run_fig9(switch_counts=(100, 300), instances_per_size=4)
        for count in (100, 300):
            assert result.chronus_boxes[count].mean < 0.5 * result.tp_means[count]
        assert "Fig. 9" in result.render()

    def test_matches_paper_magnitudes_at_300(self):
        result = fig9.run_fig9(switch_counts=(300,), instances_per_size=6)
        # Paper: ~190 (Chronus) vs ~596 (TP) rule operations.
        assert 150 <= result.chronus_boxes[300].mean <= 230
        assert 540 <= result.tp_means[300] <= 660


@pytest.mark.slow
class TestFig10:
    def test_chronus_fast_exact_solvers_cut_off(self):
        result = fig10.run_fig10(switch_counts=(60, 600), cutoff=1.0)
        assert result.seconds["chronus"][0] is not None
        assert result.seconds["chronus"][1] is not None
        # At the larger size at least one exact solver hits the cutoff.
        assert (
            result.seconds["or"][1] is None or result.seconds["opt"][1] is None
        )
        assert "cutoff" in result.render()

    def test_scheme_selection_skips_exact_solvers(self):
        result = fig10.run_fig10(switch_counts=(60,), cutoff=1.0, schemes=("chronus",))
        assert set(result.seconds) == {"chronus"}
        assert result.seconds["chronus"][0] is not None
        rendered = result.render()
        assert "chronus" in rendered and "opt" not in rendered

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            fig10.run_fig10(switch_counts=(20,), schemes=("chronus", "magic"))


@pytest.mark.slow
class TestFig11:
    def test_chronus_near_optimal_update_time(self):
        result = fig11.run_fig11(switch_count=40, instances=5, opt_budget=1.0)
        assert len(result.chronus_times) == 5
        for chronus, opt in zip(result.chronus_times, result.opt_times):
            assert opt <= chronus
        cdfs = result.cdfs()
        assert cdfs["chronus"][-1][1] == pytest.approx(1.0)
        assert "Fig. 11" in result.render()
