"""The example scripts must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "emulation.py", "maintenance_reroute.py", "policy_update_batch.py", "link_failover.py"],
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()


def test_quickstart_reports_consistent_schedule():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "congestion-free: True" in completed.stdout
    assert "loop-free: True" in completed.stdout
    assert "feasible = True" in completed.stdout
