"""Unit tests for the ground-truth dynamic-flow tracer (Definitions 1-3)."""

import pytest

from repro.core.schedule import UpdateSchedule
from repro.core.trace import (
    active_next_hop,
    is_complete,
    trace_schedule,
    validate_schedule,
)


class TestActiveNextHop:
    def test_old_rule_before_update(self, fig1_instance):
        assert active_next_hop(fig1_instance, {"v2": 5}, "v2", 4) == "v3"

    def test_new_rule_at_update_time(self, fig1_instance):
        assert active_next_hop(fig1_instance, {"v2": 5}, "v2", 5) == "v6"

    def test_unscheduled_stays_old(self, fig1_instance):
        assert active_next_hop(fig1_instance, {}, "v2", 100) == "v3"

    def test_blackhole_for_ruleless_switch(self, tiny_instance):
        # 'c' is only reached via new rules; before any update it has a rule,
        # but a switch absent from both configs yields None.
        assert active_next_hop(tiny_instance, {}, "d", 0) is None


class TestPaperSchedule:
    def test_paper_timed_sequence_is_consistent(self, fig1_instance, paper_schedule):
        result = trace_schedule(fig1_instance, paper_schedule)
        assert result.ok
        assert result.congestion == []
        assert result.loops == []
        assert result.blackholes == []

    def test_all_at_once_has_three_loops(self, fig1_instance):
        schedule = UpdateSchedule({v: 0 for v in fig1_instance.switches_to_update})
        result = trace_schedule(fig1_instance, schedule)
        # The paper's Fig. 2(a) names three transient forwarding loops.
        assert len(result.loops) == 3
        assert {event.node for event in result.loops} == {"v2", "v3"}

    def test_fig2b_congests_link_v4_v3(self, fig1_instance):
        schedule = UpdateSchedule({"v1": 0, "v2": 0, "v3": 1, "v4": 1, "v5": 1})
        result = trace_schedule(fig1_instance, schedule)
        assert any(event.link == ("v4", "v3") for event in result.congestion)

    def test_early_v5_deflects_old_flow_back_through_v2(self, fig1_instance):
        # Updating v5 while old flow is in flight sends it back over
        # (v5, v2) towards (v2, v6) -- the Section II example.  Under
        # Definition 2 this is first and foremost a forwarding loop: the
        # deflected units already crossed v2 on their way out.
        schedule = UpdateSchedule({"v2": 0, "v5": 0, "v3": 1, "v1": 2, "v4": 2})
        result = trace_schedule(fig1_instance, schedule)
        assert not result.ok
        assert any(event.node == "v2" for event in result.loops)


class TestMechanics:
    def test_loads_complete_from_t0(self, fig1_instance, paper_schedule):
        result = trace_schedule(fig1_instance, paper_schedule)
        assert result.check_start == 0
        # Steady old-path load before the update is d=1 on every old link.
        assert result.loads[("v1", "v2")][0] == 1.0

    def test_peak_load_and_series(self, fig1_instance, paper_schedule):
        result = trace_schedule(fig1_instance, paper_schedule)
        assert result.peak_load("v2", "v6") == 1.0
        assert result.peak_load("x", "y") == 0.0
        assert result.load_series("v1", "v2")

    def test_blackhole_detected(self, tiny_instance):
        # Updating the source before installing c's rule? c is on the old
        # path here, so instead craft: update only a -> flow goes a->c with
        # delay 3; c already has a rule (old path) so no blackhole.
        schedule = UpdateSchedule({"a": 0})
        result = trace_schedule(tiny_instance, schedule)
        assert result.drop_free

    def test_partial_schedule_supported(self, fig1_instance):
        result = trace_schedule(fig1_instance, UpdateSchedule({"v2": 0}))
        assert result.ok  # updating only v2 is the safe first step

    def test_is_complete(self, fig1_instance, paper_schedule):
        assert is_complete(fig1_instance, paper_schedule)
        assert not is_complete(fig1_instance, UpdateSchedule({"v2": 0}))

    def test_validate_alias(self, fig1_instance, paper_schedule):
        assert validate_schedule(fig1_instance, paper_schedule).ok


class TestShortcutInstance:
    def test_overtake_congestion_is_unavoidable(self, shortcut_instance):
        # Any source update time collides on (c, d): off_new < off_old.
        for when in (0, 3, 10):
            result = trace_schedule(shortcut_instance, UpdateSchedule({"a": when}))
            assert any(event.link == ("c", "d") for event in result.congestion)

    def test_slow_detour_is_clean(self, tiny_instance):
        result = trace_schedule(tiny_instance, UpdateSchedule({"a": 0}))
        assert result.ok
