"""Unit and property tests for topology generators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.flows import Flow
from repro.network.paths import path_delay, validate_path
from repro.network.topology import (
    TwoPathTopology,
    emulation_topology,
    fat_tree_topology,
    linear_topology,
    reversal_topology,
    ring_topology,
    segmented_reversal_topology,
    switch_names,
    two_path_topology,
    waxman_topology,
)


class TestFlow:
    def test_rejects_equal_endpoints(self):
        with pytest.raises(ValueError):
            Flow("f", "a", "a")

    def test_rejects_nonpositive_demand(self):
        with pytest.raises(ValueError):
            Flow("f", "a", "b", demand=0)


class TestSwitchNames:
    def test_naming(self):
        assert switch_names(3) == ["v1", "v2", "v3"]

    def test_minimum(self):
        with pytest.raises(ValueError):
            switch_names(1)


class TestLinear:
    def test_chain_structure(self):
        net, path = linear_topology(5)
        assert path == ("v1", "v2", "v3", "v4", "v5")
        assert len(net.links) == 4
        validate_path(net, path)


class TestRing:
    def test_bidirectional_ring(self):
        net = ring_topology(4)
        assert len(net.links) == 8
        assert net.has_link("v4", "v1") and net.has_link("v1", "v4")

    def test_unidirectional_ring(self):
        net = ring_topology(4, bidirectional=False)
        assert len(net.links) == 4


class TestTwoPath:
    @given(count=st.integers(min_value=3, max_value=40), seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_paths_share_endpoints_and_exist(self, count, seed):
        topo = two_path_topology(count, rng=random.Random(seed))
        assert topo.old_path[0] == topo.new_path[0] == "v1"
        assert topo.old_path[-1] == topo.new_path[-1] == f"v{count}"
        validate_path(topo.network, topo.old_path)
        validate_path(topo.network, topo.new_path)

    def test_detour_fraction_zero_is_direct(self):
        topo = two_path_topology(6, rng=random.Random(1), detour_fraction=0.0)
        assert topo.new_path == ("v1", "v6")

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            two_path_topology(5, detour_fraction=1.5)

    def test_mismatched_endpoints_rejected(self):
        net, path = linear_topology(4)
        with pytest.raises(ValueError):
            TwoPathTopology(network=net, old_path=path, new_path=("v2", "v3", "v4"))

    def test_max_delay_draws_in_range(self):
        topo = two_path_topology(10, rng=random.Random(3), max_delay=4)
        assert all(1 <= link.delay <= 4 for link in topo.network.links)


class TestReversal:
    def test_new_path_reverses_middle(self):
        topo = reversal_topology(5)
        assert topo.old_path == ("v1", "v2", "v3", "v4", "v5")
        assert topo.new_path == ("v1", "v4", "v3", "v2", "v5")


class TestSegmentedReversal:
    @given(count=st.integers(20, 200), seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_valid_paths(self, count, seed):
        topo = segmented_reversal_topology(count, rng=random.Random(seed))
        validate_path(topo.network, topo.old_path)
        validate_path(topo.network, topo.new_path)
        assert topo.old_path[0] == topo.new_path[0]
        assert topo.old_path[-1] == topo.new_path[-1]

    @given(count=st.integers(20, 120), seed=st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_new_path_not_faster(self, count, seed):
        """phi(new) >= phi(old): the Algorithm 1 feasibility condition."""
        topo = segmented_reversal_topology(count, rng=random.Random(seed))
        assert path_delay(topo.network, topo.new_path) >= path_delay(
            topo.network, topo.old_path
        )


class TestWaxman:
    def test_links_are_bidirectional(self):
        net = waxman_topology(20, rng=random.Random(7))
        for link in net.links:
            assert net.has_link(link.dst, link.src)

    def test_switch_count(self):
        net = waxman_topology(15, rng=random.Random(1))
        assert len(net) == 15


class TestFatTree:
    def test_k4_shape(self):
        net = fat_tree_topology(4)
        cores = [s for s in net.switches if s.startswith("core")]
        aggs = [s for s in net.switches if s.startswith("agg")]
        edges = [s for s in net.switches if s.startswith("edge")]
        assert len(cores) == 4 and len(aggs) == 8 and len(edges) == 8

    def test_odd_arity_rejected(self):
        with pytest.raises(ValueError):
            fat_tree_topology(3)


class TestEmulation:
    def test_matches_paper_setup(self):
        topo = emulation_topology(rng=random.Random(2))
        assert len([n for n in topo.network.switches]) == 10
        assert all(link.capacity == 5.0 for link in topo.network.links)
