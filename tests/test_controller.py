"""Unit tests for the control plane: channel, clocks, controller, executors."""

import random

import pytest

from repro.controller import (
    ConstantDelayModel,
    ControlChannel,
    Controller,
    DionysusDelayModel,
    UniformDelayModel,
    perform_round_update,
    perform_timed_update,
    synchronized_clocks,
)
from repro.controller.clock import SwitchClock
from repro.controller.messages import (
    BarrierRequest,
    FlowModAdd,
    FlowModModify,
    next_xid,
)
from repro.core.greedy import greedy_schedule
from repro.core.instance import motivating_example
from repro.simulator import FlowRule, Match, Simulator, build_dataplane
from repro.simulator.dataplane import install_config


class TestDelayModels:
    def test_constant(self):
        model = ConstantDelayModel(0.25)
        assert model.sample(random.Random(0)) == 0.25

    def test_uniform_in_range(self):
        model = UniformDelayModel(0.01, 0.02)
        rng = random.Random(1)
        for _ in range(50):
            assert 0.01 <= model.sample(rng) <= 0.02

    def test_dionysus_long_tail_capped(self):
        model = DionysusDelayModel(median=0.05, sigma=1.0, cap=0.5)
        rng = random.Random(2)
        samples = [model.sample(rng) for _ in range(500)]
        assert max(samples) <= 0.5
        assert min(samples) > 0.0
        # Median in the right ballpark for a log-normal.
        samples.sort()
        assert 0.02 < samples[250] < 0.12


class TestClocks:
    def test_offset_mapping_roundtrip(self):
        clock = SwitchClock(offset=0.5)
        assert clock.local_time(10.0) == 10.5
        assert clock.true_time(10.5) == 10.0

    def test_synchronized_within_bound(self):
        clocks = synchronized_clocks(["a", "b", "c"], max_offset=1e-3, rng=random.Random(3))
        assert set(clocks) == {"a", "b", "c"}
        assert all(abs(c.offset) <= 1e-3 for c in clocks.values())


def build_world(install_delay=None, clock_offset=0.0):
    instance = motivating_example()
    sim = Simulator()
    plane = build_dataplane(sim, instance.network, delay_scale=1.0)
    install_config(plane, instance)
    channel = ControlChannel(
        sim,
        network_delay=ConstantDelayModel(0.001),
        install_delay=install_delay or ConstantDelayModel(0.01),
        rng=random.Random(0),
    )
    clocks = {name: SwitchClock(clock_offset) for name in instance.network.switches}
    controller = Controller(sim, channel, clocks)
    for switch in plane.switches.values():
        controller.manage(switch)
    plane.inject_flow(instance.source, "h1", "v6", rate=1.0)
    return instance, sim, plane, controller


class TestFlowModDelivery:
    def test_modify_applied_after_latency(self):
        instance, sim, plane, controller = build_world()
        xid = next_xid()
        controller.send_flow_mod(
            "v2",
            FlowModModify(xid=xid, rule_name="f", out_port=plane.port_of("v2", "v6")),
        )
        sim.run(until=1.0)
        applied = controller.apply_time("v2", xid)
        assert applied is not None
        assert applied == pytest.approx(0.011, abs=1e-6)

    def test_scheduled_execution_time_honoured(self):
        instance, sim, plane, controller = build_world(clock_offset=0.0)
        xid = next_xid()
        controller.send_flow_mod(
            "v2",
            FlowModModify(
                xid=xid, rule_name="f", out_port=plane.port_of("v2", "v6"),
                execute_at=5.0,
            ),
        )
        sim.run(until=10.0)
        assert controller.apply_time("v2", xid) == pytest.approx(5.0)

    def test_clock_offset_skews_scheduled_execution(self):
        instance, sim, plane, controller = build_world(clock_offset=0.25)
        xid = next_xid()
        controller.send_flow_mod(
            "v2",
            FlowModModify(
                xid=xid, rule_name="f", out_port=plane.port_of("v2", "v6"),
                execute_at=5.0,
            ),
        )
        sim.run(until=10.0)
        # Local clock runs 0.25s ahead: local 5.0 occurs at true 4.75.
        assert controller.apply_time("v2", xid) == pytest.approx(4.75)

    def test_add_installs_rule(self):
        instance, sim, plane, controller = build_world()
        rule = FlowRule("extra", Match(dst_prefix="zzz"), out_port=1)
        controller.send_flow_mod("v3", FlowModAdd(xid=next_xid(), rule=rule))
        sim.run(until=1.0)
        assert "extra" in plane.switch("v3").table


class TestBarriers:
    def test_barrier_waits_for_prior_flowmods(self):
        instance, sim, plane, controller = build_world(
            install_delay=ConstantDelayModel(0.5)
        )
        xid = next_xid()
        controller.send_flow_mod(
            "v2",
            FlowModModify(xid=xid, rule_name="f", out_port=plane.port_of("v2", "v6")),
        )
        replies = []
        controller.send_barrier("v2", lambda reply: replies.append(sim.now))
        sim.run(until=5.0)
        assert len(replies) == 1
        # Reply cannot precede the 0.5 s rule installation.
        assert replies[0] > 0.5

    def test_barrier_on_idle_switch_is_fast(self):
        instance, sim, plane, controller = build_world()
        replies = []
        controller.send_barrier("v4", lambda reply: replies.append(sim.now))
        sim.run(until=1.0)
        assert len(replies) == 1
        assert replies[0] < 0.1


class TestExecutors:
    def test_timed_update_executes_at_schedule(self):
        instance, sim, plane, controller = build_world()
        schedule = greedy_schedule(instance).schedule
        trace = perform_timed_update(
            controller, plane, instance, schedule, time_unit=1.0, start_at=2.0
        )
        sim.run(until=20.0)
        assert set(trace.applied) == set(instance.switches_to_update)
        assert trace.max_skew == pytest.approx(0.0, abs=1e-9)
        # No link ever exceeded its capacity.
        peak = max(plane.links[l].peak_utilization() for l in plane.links)
        assert peak <= 1.0 + 1e-9
        assert plane.switch("v6").delivered == pytest.approx(1.0)

    def test_round_update_orders_rounds(self):
        instance, sim, plane, controller = build_world(
            install_delay=UniformDelayModel(0.05, 0.4)
        )
        schedule = greedy_schedule(instance).schedule
        finished = []
        perform_round_update(
            controller, plane, instance, schedule, time_unit=0.5,
            on_finish=finished.append,
        )
        sim.run(until=60.0)
        assert finished
        trace = finished[0]
        rounds = schedule.rounds()
        for (t1, nodes1), (t2, nodes2) in zip(rounds, rounds[1:]):
            latest_first = max(trace.applied[n] for n in nodes1)
            earliest_second = min(trace.applied[n] for n in nodes2)
            assert latest_first < earliest_second
