"""Unit tests for the failover planner."""

import pytest

from repro.network.graph import Network, network_from_links
from repro.planning import FailoverPlan, plan_link_failover, shortest_delay_path


@pytest.fixture
def diamond():
    """Two parallel routes a->d plus a slow bypass around (b, c)."""
    net = Network()
    for src, dst, delay in [
        ("a", "b", 1),
        ("b", "c", 1),
        ("c", "d", 1),
        ("b", "x", 1),
        ("x", "c", 2),
        ("a", "y", 3),
        ("y", "d", 3),
    ]:
        net.add_link(src, dst, capacity=1.0, delay=delay)
    return net


class TestShortestDelayPath:
    def test_prefers_low_delay(self, diamond):
        assert shortest_delay_path(diamond, "a", "d") == ["a", "b", "c", "d"]

    def test_avoids_forbidden_link(self, diamond):
        path = shortest_delay_path(diamond, "a", "d", forbidden_links=[("b", "c")])
        assert path == ["a", "b", "x", "c", "d"]

    def test_avoids_forbidden_nodes(self, diamond):
        path = shortest_delay_path(
            diamond, "a", "d", forbidden_links=[("b", "c")], forbidden_nodes=["x"]
        )
        assert path == ["a", "y", "d"]

    def test_unreachable_returns_none(self, diamond):
        assert shortest_delay_path(diamond, "d", "a") is None


class TestFailoverPlanner:
    def test_reroutes_around_failed_link(self, diamond):
        plan = plan_link_failover(diamond, ["a", "b", "c", "d"], ("b", "c"))
        assert plan is not None
        assert plan.backup_path == ("a", "b", "x", "c", "d")
        assert ("b", "c") not in list(
            zip(plan.backup_path, plan.backup_path[1:])
        )

    def test_slow_detour_is_consistent(self, diamond):
        # The bypass is slower than the failed segment, so Algorithm 1
        # accepts and the schedule is verified consistent.
        plan = plan_link_failover(diamond, ["a", "b", "c", "d"], ("b", "c"))
        assert plan.feasibility.feasible
        assert plan.consistent
        from repro.core.trace import trace_schedule

        assert trace_schedule(plan.instance, plan.result.schedule).ok

    def test_fast_detour_flagged_inconsistent(self):
        # The only detour is *faster* than the failed segment: rerouting
        # overtakes in-flight traffic on (c, d), which no schedule can fix.
        net = network_from_links(
            [("a", "b"), ("b", "c"), ("c", "d"), ("a", "c")], delay=1
        )
        plan = plan_link_failover(net, ["a", "b", "c", "d"], ("a", "b"))
        assert plan is not None
        assert plan.backup_path == ("a", "c", "d")
        assert not plan.consistent  # best-effort schedule, flagged honestly

    def test_link_not_on_path_rejected(self, diamond):
        with pytest.raises(ValueError):
            plan_link_failover(diamond, ["a", "b", "c", "d"], ("x", "c"))

    def test_no_backup_route(self):
        net = network_from_links([("a", "b"), ("b", "c")])
        assert plan_link_failover(net, ["a", "b", "c"], ("b", "c")) is None

    def test_source_adjacent_failure_uses_fresh_route(self, diamond):
        plan = plan_link_failover(diamond, ["a", "b", "c", "d"], ("a", "b"))
        assert plan is not None
        assert plan.backup_path[0] == "a" and plan.backup_path[-1] == "d"
