"""Unit and equivalence tests for the interval-based flow tracker."""

import pytest

from repro.core.instance import random_instance, segmented_instance
from repro.core.intervals import (
    FlowClass,
    IntervalTracker,
    replay_schedule,
)
from repro.core.schedule import UpdateSchedule
from repro.core.trace import trace_schedule


class TestFlowClass:
    def test_departure_interval_shifts_by_offset(self):
        cls = FlowClass(lo=2, hi=5, nodes=("a", "b", "c"), offsets=(0, 1, 3))
        assert cls.departure_interval(0) == (2, 5)
        assert cls.departure_interval(2) == (5, 8)

    def test_open_intervals(self):
        cls = FlowClass(lo=None, hi=None, nodes=("a", "b"), offsets=(0, 1))
        assert cls.departure_interval(1) == (None, None)

    def test_is_empty(self):
        assert FlowClass(lo=3, hi=2, nodes=("a", "b"), offsets=(0, 1)).is_empty()
        assert not FlowClass(lo=2, hi=2, nodes=("a", "b"), offsets=(0, 1)).is_empty()

    def test_link_positions_cached(self):
        cls = FlowClass(lo=0, hi=0, nodes=("a", "b", "c"), offsets=(0, 1, 2))
        positions = cls.link_positions()
        assert positions[("a", "b")] == [0]
        assert cls.link_positions() is positions


class TestTrackerBasics:
    def test_initial_state_is_steady_old_path(self, fig1_instance):
        tracker = IntervalTracker(fig1_instance)
        assert len(tracker.classes) == 1
        assert tracker.classes[0].nodes == fig1_instance.old_path
        assert tracker.ok

    def test_load_at_on_old_link(self, fig1_instance):
        tracker = IntervalTracker(fig1_instance)
        assert tracker.load_at("v1", "v2", -100) == 1.0
        assert tracker.load_at("v2", "v6", 0) == 0.0

    def test_rounds_must_be_chronological(self, fig1_instance):
        tracker = IntervalTracker(fig1_instance)
        tracker.apply_round(["v2"], 3)
        with pytest.raises(ValueError, match="chronolog"):
            tracker.apply_round(["v3"], 2)

    def test_double_update_rejected(self, fig1_instance):
        tracker = IntervalTracker(fig1_instance)
        tracker.apply_round(["v2"], 0)
        with pytest.raises(ValueError, match="already"):
            tracker.apply_round(["v2"], 1)

    def test_destination_update_rejected(self, fig1_instance):
        tracker = IntervalTracker(fig1_instance)
        with pytest.raises(ValueError, match="destination"):
            tracker.apply_round(["v6"], 0)

    def test_empty_round_rejected(self, fig1_instance):
        tracker = IntervalTracker(fig1_instance)
        with pytest.raises(ValueError):
            tracker.apply_round([], 0)


class TestPreviewSemantics:
    def test_preview_does_not_commit(self, fig1_instance):
        tracker = IntervalTracker(fig1_instance)
        before = len(tracker.classes)
        report = tracker.preview_round(["v2"], 0)
        assert report.ok
        assert len(tracker.classes) == before
        assert tracker.applied == {}

    def test_preview_detects_loop(self, fig1_instance):
        tracker = IntervalTracker(fig1_instance)
        report = tracker.preview_round(["v3"], 0)  # deflects into upstream v2
        assert report.loops

    def test_preview_detects_congestion(self, fig1_instance):
        tracker = IntervalTracker(fig1_instance)
        tracker.apply_round(["v1", "v2"], 0)
        report = tracker.preview_round(["v3", "v4", "v5"], 1)
        assert any(span.link == ("v4", "v3") for span in report.congestion)

    def test_clone_is_independent(self, fig1_instance):
        tracker = IntervalTracker(fig1_instance)
        clone = tracker.clone()
        clone.apply_round(["v2"], 0)
        assert tracker.applied == {}
        assert clone.applied == {"v2": 0}


class TestReplay:
    def test_paper_schedule_clean(self, fig1_instance, paper_schedule):
        tracker = replay_schedule(fig1_instance, paper_schedule)
        assert tracker.ok
        assert tracker.congested_timed_link_count() == 0

    def test_congested_timed_link_count(self, fig1_instance):
        schedule = UpdateSchedule({"v1": 0, "v2": 0, "v3": 1, "v4": 1, "v5": 1})
        tracker = replay_schedule(fig1_instance, schedule)
        assert tracker.congested_timed_link_count() >= 1


class TestEquivalenceWithUnitTracer:
    """The scalable tracker must agree with the quadratic oracle."""

    @pytest.mark.parametrize("seed", range(25))
    def test_random_schedules_agree(self, seed):
        import random

        rng = random.Random(seed)
        instance = random_instance(rng.randint(4, 9), seed=seed)
        nodes = list(instance.switches_to_update)
        times = {node: rng.randint(0, 6) for node in nodes}
        schedule = UpdateSchedule(times, start_time=0)
        oracle = trace_schedule(instance, schedule)
        tracker = replay_schedule(instance, schedule)

        assert (not oracle.congestion) == (not tracker.congestion_spans())
        assert (not oracle.loops) == (not tracker.loops)
        assert (not oracle.blackholes) == (not tracker.blackholes)

    @pytest.mark.parametrize("seed", range(8))
    def test_congested_link_counts_agree(self, seed):
        import random

        rng = random.Random(1000 + seed)
        instance = random_instance(rng.randint(5, 8), seed=900 + seed)
        nodes = list(instance.switches_to_update)
        times = {node: rng.randint(0, 4) for node in nodes}
        schedule = UpdateSchedule(times, start_time=0)
        oracle = trace_schedule(instance, schedule)
        tracker = replay_schedule(instance, schedule)
        if not oracle.loops:  # the oracle truncates loopy units' loads
            assert len(oracle.congested_timed_links) == tracker.congested_timed_link_count()

    def test_segmented_instance_agrees(self):
        instance = segmented_instance(20, seed=4, segments=2, max_segment_length=5)
        from repro.core.greedy import greedy_schedule

        schedule = greedy_schedule(instance).schedule
        assert trace_schedule(instance, schedule).ok
        assert replay_schedule(instance, schedule).ok
