"""Unit tests for path utilities."""

import pytest

from repro.network.graph import network_from_links
from repro.network.paths import (
    arrival_offsets,
    as_path,
    follow_config,
    is_simple,
    path_delay,
    path_links,
    validate_path,
)


@pytest.fixture
def chain():
    return network_from_links([("a", "b"), ("b", "c"), ("c", "d")], delay=2)


class TestAsPath:
    def test_normalises_to_tuple(self):
        assert as_path(["a", "b"]) == ("a", "b")

    def test_rejects_single_node(self):
        with pytest.raises(ValueError):
            as_path(["a"])

    def test_rejects_consecutive_repeat(self):
        with pytest.raises(ValueError):
            as_path(["a", "a", "b"])


class TestPathLinks:
    def test_links(self):
        assert list(path_links(("a", "b", "c"))) == [("a", "b"), ("b", "c")]

    def test_empty_for_short(self):
        assert list(path_links(("a", "b"))) == [("a", "b")]


class TestValidatePath:
    def test_valid(self, chain):
        validate_path(chain, ("a", "b", "c", "d"))

    def test_missing_link(self, chain):
        with pytest.raises(ValueError, match="missing link"):
            validate_path(chain, ("a", "c"))

    def test_non_simple(self, chain):
        with pytest.raises(ValueError, match="not simple"):
            validate_path(chain, ("a", "b", "a"))


class TestDelays:
    def test_path_delay(self, chain):
        assert path_delay(chain, ("a", "b", "c", "d")) == 6

    def test_arrival_offsets(self, chain):
        assert arrival_offsets(chain, ("a", "b", "c", "d")) == [0, 2, 4, 6]

    def test_is_simple(self):
        assert is_simple(("a", "b", "c"))
        assert not is_simple(("a", "b", "a"))


class TestFollowConfig:
    def test_complete_route(self):
        nodes, complete = follow_config({"a": "b", "b": "c"}, "a", "c", max_hops=5)
        assert nodes == ("a", "b", "c")
        assert complete

    def test_blackhole(self):
        nodes, complete = follow_config({"a": "b"}, "a", "c", max_hops=5)
        assert nodes == ("a", "b")
        assert not complete

    def test_loop_guard(self):
        nodes, complete = follow_config({"a": "b", "b": "a"}, "a", "c", max_hops=4)
        assert not complete
        assert len(nodes) == 5  # a plus four hops
