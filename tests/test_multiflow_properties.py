"""Property tests for multi-flow composition."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.instance import instance_from_paths
from repro.core.multiflow import (
    MultiFlowUpdate,
    greedy_multiflow,
    validate_multiflow,
)
from repro.core.schedule import UpdateSchedule
from repro.core.trace import trace_schedule
from repro.network.graph import Network

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


def disjoint_flows_network(flow_count: int) -> MultiFlowUpdate:
    """Flows on fully disjoint chains with private detours."""
    net = Network()
    instances = []
    for i in range(flow_count):
        a, b, c, d, x = (f"{n}{i}" for n in "abcdx")
        for src, dst, delay in [
            (a, b, 1), (b, c, 1), (c, d, 1), (a, x, 3), (x, c, 1),
        ]:
            net.add_link(src, dst, capacity=1.0, delay=delay)
        instances.append(
            instance_from_paths(net, [a, b, c, d], [a, x, c, d], flow_name=f"f{i}")
        )
    return MultiFlowUpdate(network=net, instances=instances)


class TestIndependenceOfDisjointFlows:
    @given(
        flow_count=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25, **COMMON)
    def test_joint_verdict_equals_per_flow_verdicts(self, flow_count, seed):
        """Flows sharing no links validate jointly iff each validates alone."""
        update = disjoint_flows_network(flow_count)
        rng = random.Random(seed)
        schedules = {}
        per_flow_ok = True
        for inst in update.instances:
            times = {
                node: rng.randint(0, 4) for node in inst.switches_to_update
            }
            schedule = UpdateSchedule(times, start_time=0)
            schedules[inst.flow.name] = schedule
            per_flow_ok &= trace_schedule(inst, schedule).ok
        report = validate_multiflow(update, schedules)
        assert report.ok == per_flow_ok

    @given(flow_count=st.integers(min_value=1, max_value=4))
    @settings(max_examples=8, **COMMON)
    def test_greedy_multiflow_solves_disjoint_flows(self, flow_count):
        update = disjoint_flows_network(flow_count)
        result = greedy_multiflow(update)
        assert result.feasible
        # Disjoint flows compose without stretching any schedule.
        for inst in update.instances:
            from repro.core.greedy import greedy_schedule

            alone = greedy_schedule(inst)
            joint = result.results[inst.flow.name]
            assert joint.schedule.makespan == alone.schedule.makespan


class TestJointSweepConsistency:
    def test_single_flow_multiupdate_matches_tracker(self):
        """With one flow, the joint validator reduces to the tracker."""
        from repro.core.instance import motivating_example
        from repro.core.intervals import replay_schedule

        instance = motivating_example()
        update = MultiFlowUpdate(network=instance.network, instances=[instance])
        schedule = UpdateSchedule(
            {"v1": 0, "v2": 0, "v3": 1, "v4": 1, "v5": 1}, start_time=0
        )
        report = validate_multiflow(update, {instance.flow.name: schedule})
        tracker = replay_schedule(instance, schedule)
        assert bool(report.congestion) == bool(tracker.congestion_spans())
        assert bool(report.loops[instance.flow.name]) == bool(tracker.loops)
