"""Unit tests for Algorithm 4 (forwarding-loop check)."""

import pytest

from repro.core.loops import creates_forwarding_loop, new_route_revisits


class TestBackwardWalk:
    def test_v3_at_t0_loops(self, fig1_instance):
        # v3's new hop v2 is its live old-path predecessor's predecessor:
        # deflected units return through v2.
        assert creates_forwarding_loop(fig1_instance, {}, "v3", 0)

    def test_v2_at_t0_safe(self, fig1_instance):
        # v2's new hop v6 is downstream -- no loop.
        assert not creates_forwarding_loop(fig1_instance, {}, "v2", 0)

    def test_v4_with_live_v3_loops(self, fig1_instance):
        # The paper's t1 decision: updating v4 while v3 still feeds it sends
        # units back into v3.
        assert creates_forwarding_loop(fig1_instance, {"v2": 0, "v3": 1}, "v4", 1)

    def test_v4_after_drain_is_safe(self, fig1_instance):
        # At t2, v3's old departures ended at t=0 < t2 - sigma: the solid
        # line into v4 is gone, so the deflection cannot loop.
        assert not creates_forwarding_loop(fig1_instance, {"v2": 0, "v3": 1}, "v4", 2)

    def test_v5_at_t0_loops_via_v2(self, fig1_instance):
        assert creates_forwarding_loop(fig1_instance, {}, "v5", 0)

    def test_source_update_never_loops(self, fig1_instance):
        # v1 has no old-path predecessor.
        assert not creates_forwarding_loop(fig1_instance, {}, "v1", 0)

    def test_switch_without_new_rule_is_safe(self, tiny_instance):
        assert not creates_forwarding_loop(tiny_instance, {}, "b", 0)


class TestForwardVariant:
    def test_agrees_on_fig1_hazards(self, fig1_instance):
        assert new_route_revisits(fig1_instance, {}, "v3", 0) == "v2"
        assert new_route_revisits(fig1_instance, {}, "v2", 0) is None

    def test_detects_multi_hop_revisit(self, fig1_instance):
        # Updating v4 at t1 (v3 updated same step): the deflected unit goes
        # v4 -> v3 -> v2 ... having already crossed v3.
        revisit = new_route_revisits(fig1_instance, {"v2": 0, "v3": 1}, "v4", 1)
        assert revisit == "v3"

    def test_clean_after_drain(self, fig1_instance):
        applied = {"v2": 0, "v3": 1}
        assert new_route_revisits(fig1_instance, applied, "v4", 2) is None


class TestAgainstExactPreview:
    """Algorithm 4's verdicts match the exact tracker on random instances."""

    @pytest.mark.parametrize("seed", range(20))
    def test_no_false_negatives_at_t0(self, seed):
        from repro.core.instance import random_instance
        from repro.core.intervals import IntervalTracker

        instance = random_instance(7, seed=seed)
        tracker = IntervalTracker(instance)
        for node in instance.switches_to_update:
            exact_loops = bool(tracker.preview_round([node], 0).loops)
            claimed = creates_forwarding_loop(instance, {}, node, 0)
            if exact_loops:
                # The backward walk checks only the immediate next hop; the
                # exact forward variant must catch everything.
                forward = new_route_revisits(instance, {}, node, 0)
                assert forward is not None
