"""Unit tests for update schedules."""

import pytest

from repro.core.schedule import UpdateSchedule, schedule_from_rounds


class TestBasics:
    def test_makespan_counts_inclusive_steps(self):
        schedule = UpdateSchedule({"a": 0, "b": 3}, start_time=0)
        assert schedule.makespan == 4  # t0..t3

    def test_makespan_uses_start_time(self):
        schedule = UpdateSchedule({"a": 5}, start_time=3)
        assert schedule.makespan == 3  # t3, t4, t5

    def test_empty_schedule(self):
        schedule = UpdateSchedule({}, start_time=2)
        assert schedule.makespan == 0
        assert schedule.t0 == 2
        assert len(schedule) == 0

    def test_t0_defaults_to_earliest(self):
        schedule = UpdateSchedule({"a": 4, "b": 7})
        assert schedule.t0 == 4

    def test_update_before_start_rejected(self):
        with pytest.raises(ValueError):
            UpdateSchedule({"a": 1}, start_time=2)

    def test_non_integer_time_rejected(self):
        with pytest.raises(ValueError):
            UpdateSchedule({"a": 1.5})

    def test_contains_and_time_of(self):
        schedule = UpdateSchedule({"a": 1})
        assert "a" in schedule and "b" not in schedule
        assert schedule.time_of("a") == 1
        with pytest.raises(KeyError):
            schedule.time_of("b")


class TestRounds:
    def test_rounds_grouped_and_sorted(self):
        schedule = UpdateSchedule({"a": 2, "b": 0, "c": 2})
        assert schedule.rounds() == [(0, ("b",)), (2, ("a", "c"))]

    def test_schedule_from_rounds(self):
        schedule = schedule_from_rounds([["a", "b"], [], ["c"]], start_time=5)
        assert schedule.time_of("a") == 5
        assert schedule.time_of("c") == 7

    def test_schedule_from_rounds_rejects_duplicates(self):
        with pytest.raises(ValueError):
            schedule_from_rounds([["a"], ["a"]])


class TestTransforms:
    def test_shifted(self):
        schedule = UpdateSchedule({"a": 1, "b": 2}, start_time=1)
        moved = schedule.shifted(10)
        assert moved.time_of("a") == 11
        assert moved.t0 == 11
        assert moved.makespan == schedule.makespan

    def test_restricted_to(self):
        schedule = UpdateSchedule({"a": 1, "b": 2})
        small = schedule.restricted_to(["a"])
        assert "b" not in small and small.time_of("a") == 1

    def test_as_dict_is_a_copy(self):
        schedule = UpdateSchedule({"a": 1})
        d = schedule.as_dict()
        d["a"] = 99
        assert schedule.time_of("a") == 1

    def test_feasible_flag_preserved(self):
        schedule = UpdateSchedule({"a": 1}, feasible=False)
        assert not schedule.shifted(1).feasible
        assert not schedule.restricted_to(["a"]).feasible
