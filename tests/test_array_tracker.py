"""Differential tests: ArrayIntervalTracker == IntervalTracker.

The struct-of-arrays tracker is an *encoding* change, not an algorithm
change: on every instance and round sequence it must report exactly what
the dict tracker reports -- same round reports (loops, black holes,
congestion spans), same committed state (applied times, per-link
departure timelines, loads), same error behaviour.  These tests drive
both trackers in lockstep through seeded random round sequences (clean
and violating alike) and compare everything observable at every step.
"""

import random

import pytest

np = pytest.importorskip("numpy")

from repro.core.instance import (
    motivating_example,
    random_instance,
    reversal_instance,
    segmented_instance,
)
from repro.core.intervals import IntervalTracker
from repro.core.intervals_array import (
    NUMPY_AVAILABLE,
    ArrayIntervalTracker,
    instance_arrays,
)


def _pair(instance, t0=0, background=None):
    return (
        IntervalTracker(instance, t0=t0, background=background),
        ArrayIntervalTracker(instance, t0=t0, background=background),
    )


def _class_key(entry):
    """Sort key over (lo, hi, nodes) tolerant of open (None) bounds."""
    lo, hi, nodes = entry
    return (
        lo is None,
        lo if lo is not None else 0,
        hi is None,
        hi if hi is not None else 0,
        nodes,
    )


def _assert_states_match(dict_tracker, array_tracker, label):
    """Every observable of the two trackers agrees."""
    assert array_tracker.applied == dict_tracker.applied, label
    assert array_tracker.loops == dict_tracker.loops, label
    assert array_tracker.blackholes == dict_tracker.blackholes, label
    assert array_tracker.congestion_spans() == dict_tracker.congestion_spans(), label
    assert array_tracker.ok == dict_tracker.ok, label
    assert (
        array_tracker.finite_drain_horizon() == dict_tracker.finite_drain_horizon()
    ), label
    assert (
        array_tracker.congested_timed_link_count()
        == dict_tracker.congested_timed_link_count()
    ), label
    instance = dict_tracker.instance
    for link in instance.network.links:
        assert array_tracker.link_departure_spans(
            link.src, link.dst
        ) == dict_tracker.link_departure_spans(link.src, link.dst), (label, link)
    # Class sets agree up to ordering of (bounds, trajectory); the array
    # tracker stores trajectories as node-id arrays, so translate back.
    names = array_tracker.arrays.names
    dict_classes = sorted(
        ((cls.lo, cls.hi, tuple(cls.nodes)) for cls in dict_tracker.classes),
        key=_class_key,
    )
    array_classes = sorted(
        (
            (cls.lo, cls.hi, tuple(names[i] for i in cls.nodes.tolist()))
            for cls in array_tracker.classes
        ),
        key=_class_key,
    )
    assert array_classes == dict_classes, label


def _assert_reports_match(dict_report, array_report, label):
    assert array_report.time == dict_report.time, label
    assert array_report.nodes == dict_report.nodes, label
    assert array_report.loops == dict_report.loops, label
    assert array_report.blackholes == dict_report.blackholes, label
    assert array_report.congestion == dict_report.congestion, label
    assert array_report.ok == dict_report.ok, label


def _random_rounds(instance, rng):
    """A full random update order split into rounds at increasing times."""
    nodes = list(instance.switches_to_update)
    rng.shuffle(nodes)
    rounds = []
    time = rng.randint(0, 2)
    index = 0
    while index < len(nodes):
        width = rng.randint(1, min(3, len(nodes) - index))
        rounds.append((time, nodes[index : index + width]))
        index += width
        time += rng.randint(1, 3)
    return rounds


def _sample_loads(dict_tracker, array_tracker, label):
    instance = dict_tracker.instance
    for link in instance.network.links:
        for time in (-5, 0, 1, 3, 7, 20):
            assert array_tracker.load_at(link.src, link.dst, time) == pytest.approx(
                dict_tracker.load_at(link.src, link.dst, time)
            ), (label, link, time)


class TestLockstepApply:
    """apply_round commits violating rounds too; both trackers must agree."""

    @pytest.mark.parametrize("seed", range(40))
    def test_random_instances(self, seed):
        instance = random_instance(4 + seed % 11, seed=9100 + seed, max_delay=3)
        rng = random.Random(7000 + seed)
        dict_tracker, array_tracker = _pair(instance)
        for time, nodes in _random_rounds(instance, rng):
            label = f"seed={seed} round t={time} nodes={nodes}"
            _assert_reports_match(
                dict_tracker.apply_round(nodes, time),
                array_tracker.apply_round(nodes, time),
                label,
            )
            _assert_states_match(dict_tracker, array_tracker, label)
        _sample_loads(dict_tracker, array_tracker, f"seed={seed} final")

    @pytest.mark.parametrize("seed", range(20))
    def test_segmented_instances(self, seed):
        instance = segmented_instance(
            12 + seed % 9, seed=9600 + seed, segments=2 + seed % 3
        )
        rng = random.Random(8000 + seed)
        dict_tracker, array_tracker = _pair(instance)
        for time, nodes in _random_rounds(instance, rng):
            label = f"segmented seed={seed} t={time}"
            _assert_reports_match(
                dict_tracker.apply_round(nodes, time),
                array_tracker.apply_round(nodes, time),
                label,
            )
            _assert_states_match(dict_tracker, array_tracker, label)

    @pytest.mark.parametrize("count", range(4, 10))
    def test_reversal_instances(self, count):
        instance = reversal_instance(count)
        rng = random.Random(count)
        dict_tracker, array_tracker = _pair(instance)
        for time, nodes in _random_rounds(instance, rng):
            label = f"reversal count={count} t={time}"
            _assert_reports_match(
                dict_tracker.apply_round(nodes, time),
                array_tracker.apply_round(nodes, time),
                label,
            )
            _assert_states_match(dict_tracker, array_tracker, label)


class TestLockstepProbe:
    """probe_and_commit commits exactly when clean; states must not drift."""

    @pytest.mark.parametrize("seed", range(30))
    def test_probe_sequences(self, seed):
        instance = random_instance(5 + seed % 9, seed=9900 + seed, max_delay=3)
        rng = random.Random(5000 + seed)
        dict_tracker, array_tracker = _pair(instance)
        time = 0
        for node in sorted(instance.switches_to_update, key=str):
            label = f"probe seed={seed} node={node} t={time}"
            dict_report = dict_tracker.probe_and_commit([node], time)
            array_report = array_tracker.probe_and_commit([node], time)
            _assert_reports_match(dict_report, array_report, label)
            _assert_states_match(dict_tracker, array_tracker, label)
            if dict_report.ok:
                time += rng.randint(1, 2)
            else:
                # A rejected probe must leave both trackers untouched; the
                # node is retried later at a strictly larger time.
                time += rng.randint(2, 4)
                retry = dict_tracker.probe_and_commit([node], time)
                _assert_reports_match(
                    retry, array_tracker.probe_and_commit([node], time), label
                )
                time += 1

    def test_preview_commits_nothing(self, seed=3):
        instance = random_instance(8, seed=seed, max_delay=3)
        dict_tracker, array_tracker = _pair(instance)
        node = instance.switches_to_update[0]
        _assert_reports_match(
            dict_tracker.preview_round([node], 0),
            array_tracker.preview_round([node], 0),
            "preview",
        )
        assert array_tracker.applied == {}
        _assert_states_match(dict_tracker, array_tracker, "after preview")


class TestBackgroundLoad:
    def test_background_interleaves_identically(self):
        instance = motivating_example()
        link = instance.network.links[0]
        background = {(link.src, link.dst): [(0, 4, 0.5), (None, None, 0.25)]}
        dict_tracker, array_tracker = _pair(instance, background=background)
        _assert_states_match(dict_tracker, array_tracker, "bg initial")
        _assert_reports_match(
            dict_tracker.preview_round(["v2"], 0),
            array_tracker.preview_round(["v2"], 0),
            "bg preview",
        )

    def test_unknown_background_link_rejected(self):
        instance = motivating_example()
        background = {("v1", "nope"): [(0, 1, 1.0)]}
        with pytest.raises(KeyError):
            ArrayIntervalTracker(instance, background=background)


class TestCloneSemantics:
    def test_clone_is_independent(self, fig1_instance):
        tracker = ArrayIntervalTracker(fig1_instance)
        dup = tracker.clone()
        dup.apply_round(["v2"], 0)
        assert tracker.applied == {}
        assert dup.applied == {"v2": 0}

    def test_clone_matches_dict_clone(self):
        instance = random_instance(8, seed=77, max_delay=3)
        dict_tracker, array_tracker = _pair(instance)
        nodes = list(instance.switches_to_update)
        dict_tracker.apply_round(nodes[:2], 0)
        array_tracker.apply_round(nodes[:2], 0)
        dict_dup = dict_tracker.clone()
        array_dup = array_tracker.clone()
        _assert_states_match(dict_dup, array_dup, "clones")
        _assert_reports_match(
            dict_dup.apply_round(nodes[2:3], 2),
            array_dup.apply_round(nodes[2:3], 2),
            "clone apply",
        )
        # Originals unchanged by work on the clones.
        _assert_states_match(dict_tracker, array_tracker, "originals")
        assert nodes[2] not in array_tracker.applied


class TestErrorParity:
    """Both trackers reject malformed rounds the same way."""

    def test_rounds_must_be_chronological(self, fig1_instance):
        tracker = ArrayIntervalTracker(fig1_instance)
        tracker.apply_round(["v2"], 3)
        with pytest.raises(ValueError, match="chronolog"):
            tracker.apply_round(["v3"], 2)

    def test_double_update_rejected(self, fig1_instance):
        tracker = ArrayIntervalTracker(fig1_instance)
        tracker.apply_round(["v2"], 0)
        with pytest.raises(ValueError, match="already"):
            tracker.apply_round(["v2"], 1)

    def test_destination_update_rejected(self, fig1_instance):
        tracker = ArrayIntervalTracker(fig1_instance)
        with pytest.raises(ValueError, match="destination"):
            tracker.apply_round(["v6"], 0)

    def test_empty_round_rejected(self, fig1_instance):
        tracker = ArrayIntervalTracker(fig1_instance)
        with pytest.raises(ValueError):
            tracker.apply_round([], 0)


class TestInstanceArrays:
    def test_arrays_cached_per_instance(self, fig1_instance):
        assert instance_arrays(fig1_instance) is instance_arrays(fig1_instance)

    def test_link_encoding_round_trips(self, fig1_instance):
        arrays = instance_arrays(fig1_instance)
        for link in fig1_instance.network.links:
            lid = arrays.lid_of(link.src, link.dst)
            assert lid is not None
            assert arrays.link_name[lid] == (link.src, link.dst)

    def test_missing_link_is_none(self, fig1_instance):
        arrays = instance_arrays(fig1_instance)
        assert arrays.lid_of(0, 0) is None

    def test_numpy_available_flag(self):
        assert NUMPY_AVAILABLE is True
