"""Unit tests for round-based loop-freedom (OR machinery)."""

import pytest

from repro.core.rounds import (
    greedy_loop_free_rounds,
    has_cycle,
    round_is_loop_free,
    rounds_are_loop_free,
    union_forwarding_edges,
)


class TestHasCycle:
    def test_acyclic(self):
        assert not has_cycle({"a": ["b"], "b": ["c"], "c": []})

    def test_two_cycle(self):
        assert has_cycle({"a": ["b"], "b": ["a"]})

    def test_self_reference_via_branch(self):
        assert has_cycle({"a": ["b", "c"], "b": [], "c": ["a"]})

    def test_disconnected_components(self):
        assert has_cycle({"a": ["b"], "b": [], "x": ["y"], "y": ["x"]})


class TestUnionGraph:
    def test_round_node_keeps_both_edges(self, fig1_instance):
        edges = union_forwarding_edges(fig1_instance, set(), {"v3"})
        assert sorted(edges["v3"]) == ["v2", "v4"]

    def test_updated_node_uses_new_edge(self, fig1_instance):
        edges = union_forwarding_edges(fig1_instance, {"v2"}, set())
        assert edges["v2"] == ["v6"]

    def test_pending_node_uses_old_edge(self, fig1_instance):
        edges = union_forwarding_edges(fig1_instance, set(), set())
        assert edges["v4"] == ["v5"]


class TestRoundSafety:
    def test_v3_alone_is_unsafe_first(self, fig1_instance):
        # v3 -> v2 (new) + v2 -> v3 (old) forms a cycle.
        assert not round_is_loop_free(fig1_instance, set(), {"v3"})

    def test_v3_safe_after_v2(self, fig1_instance):
        assert round_is_loop_free(fig1_instance, {"v2"}, {"v3"})

    def test_v1_v2_safe_together(self, fig1_instance):
        assert round_is_loop_free(fig1_instance, set(), {"v1", "v2"})

    def test_adjacent_swap_pair_never_joint(self, fig1_instance):
        # v3 and v4 swap direction: both-edged together they always cycle.
        assert not round_is_loop_free(fig1_instance, {"v2"}, {"v3", "v4"})


class TestGreedyRounds:
    def test_covers_all_switches(self, fig1_instance):
        rounds = greedy_loop_free_rounds(fig1_instance)
        flat = [node for r in rounds for node in r]
        assert sorted(flat) == sorted(fig1_instance.switches_to_update)

    def test_rounds_validate(self, fig1_instance):
        rounds = greedy_loop_free_rounds(fig1_instance)
        assert rounds_are_loop_free(fig1_instance, rounds)

    def test_respects_already_updated(self, fig1_instance):
        rounds = greedy_loop_free_rounds(
            fig1_instance, pending=["v3"], updated={"v1", "v2"}
        )
        assert rounds == [["v3"]]

    def test_deadline_dumps_remaining(self, fig1_instance):
        import time

        rounds = greedy_loop_free_rounds(fig1_instance, deadline=time.monotonic() - 1)
        assert len(rounds) == 1  # everything dumped into one unchecked round

    @pytest.mark.parametrize("seed", range(12))
    def test_random_instances_round_partitions_are_safe(self, seed):
        from repro.core.instance import random_instance

        instance = random_instance(5 + seed % 7, seed=seed * 3)
        rounds = greedy_loop_free_rounds(instance)
        assert rounds_are_loop_free(instance, rounds)

    @pytest.mark.parametrize("seed", range(8))
    def test_no_static_cycle_at_any_execution_instant(self, seed):
        """The union-graph criterion prevents *infinite* forwarding loops.

        (Packets may still transiently revisit a switch they crossed before
        an update -- Definition 2 is stronger, which is exactly why OR is
        not enough for Chronus' goals -- but no packet can cycle forever.)
        """
        import random

        from repro.core.instance import random_instance
        from repro.core.rounds import union_forwarding_edges
        from repro.updates.order_replacement import realize_round_times

        instance = random_instance(6 + seed % 5, seed=seed * 7)
        rounds = greedy_loop_free_rounds(instance)
        realized = realize_round_times(rounds, rng=random.Random(seed), max_skew=2)
        times = realized.as_dict()
        checkpoints = sorted(set(times.values()))
        for t in checkpoints:
            updated = {node for node, when in times.items() if when <= t}
            edges = union_forwarding_edges(instance, updated, set())
            assert not has_cycle(edges)
