"""Unit tests for OPT (exact search) against the brute-force oracle."""

import pytest

from repro.core.greedy import greedy_schedule
from repro.core.instance import random_instance
from repro.core.optimal import exhaustive_schedule, optimal_schedule
from repro.core.trace import trace_schedule


class TestMotivatingExample:
    def test_optimum_is_four_steps(self, fig1_instance):
        result = optimal_schedule(fig1_instance)
        assert result.proven
        assert result.makespan == 4
        assert trace_schedule(fig1_instance, result.schedule).ok

    def test_matches_exhaustive(self, fig1_instance):
        brute = exhaustive_schedule(fig1_instance, max_makespan=5)
        assert brute is not None
        assert brute.makespan == 4


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(15))
    def test_same_makespan_as_exhaustive(self, seed):
        instance = random_instance(6, seed=seed)
        result = optimal_schedule(instance, time_budget=20)
        brute = exhaustive_schedule(instance, max_makespan=6)
        if not result.proven:
            pytest.skip("budget exhausted")
        if brute is None:
            assert result.schedule is None or result.makespan > 6
        else:
            assert result.makespan == brute.makespan

    @pytest.mark.parametrize("seed", range(12))
    def test_never_worse_than_greedy(self, seed):
        instance = random_instance(7, seed=200 + seed)
        greedy = greedy_schedule(instance)
        result = optimal_schedule(instance, time_budget=10)
        if greedy.feasible and result.schedule is not None:
            assert result.makespan <= greedy.schedule.makespan

    @pytest.mark.parametrize("seed", range(12))
    def test_schedules_are_valid(self, seed):
        instance = random_instance(6, seed=400 + seed)
        result = optimal_schedule(instance, time_budget=10)
        if result.schedule is not None:
            assert trace_schedule(instance, result.schedule).ok


class TestEdgeCases:
    def test_nothing_to_update(self, fig1_instance):
        from repro.core.instance import instance_from_paths

        instance = instance_from_paths(
            fig1_instance.network,
            fig1_instance.old_path,
            fig1_instance.old_path,
        )
        result = optimal_schedule(instance)
        assert result.proven
        assert result.makespan == 0

    def test_infeasible_is_proven(self, shortcut_instance):
        result = optimal_schedule(shortcut_instance, time_budget=20)
        assert result.schedule is None
        assert result.proven
        assert result.feasible is False

    def test_budget_exhaustion_reports_unproven(self, fig1_instance):
        result = optimal_schedule(fig1_instance, time_budget=0.0)
        assert not result.proven

    def test_joint_only_round_found(self):
        # Seed 0 at n=6 needs {v1, v4} in one round although v1 alone would
        # congest -- the regression that motivated full subset branching.
        instance = random_instance(6, seed=0)
        result = optimal_schedule(instance, time_budget=20)
        brute = exhaustive_schedule(instance, max_makespan=4)
        assert brute is not None
        assert result.makespan == brute.makespan == 3
