"""Unit tests for update instances."""

import pytest

from repro.core.instance import (
    config_from_path,
    instance_from_paths,
    motivating_example,
    random_instance,
    reversal_instance,
    segmented_instance,
)
from repro.network.graph import Network, network_from_links


class TestMotivatingExample:
    def test_paths_match_fig1(self, fig1_instance):
        assert fig1_instance.old_path == ("v1", "v2", "v3", "v4", "v5", "v6")
        assert fig1_instance.new_path == ("v1", "v4", "v3", "v2", "v6")

    def test_every_switch_but_destination_updates(self, fig1_instance):
        assert set(fig1_instance.switches_to_update) == {"v1", "v2", "v3", "v4", "v5"}

    def test_v5_gets_drain_rule(self, fig1_instance):
        assert fig1_instance.new_next_hop("v5") == "v2"

    def test_uniform_capacity_and_delay(self, fig1_instance):
        for link in fig1_instance.network.links:
            assert link.capacity == 1.0
            assert link.delay == 1


class TestDerivedStructure:
    def test_old_predecessor(self, fig1_instance):
        assert fig1_instance.old_predecessor("v3") == "v2"
        assert fig1_instance.old_predecessor("v1") is None

    def test_path_delays(self, fig1_instance):
        assert fig1_instance.old_path_delay == 5
        assert fig1_instance.new_path_delay == 4

    def test_config_at_before_and_after_update(self, fig1_instance):
        updated = {"v2": 5}
        assert fig1_instance.config_at(updated, 4)["v2"] == "v3"
        assert fig1_instance.config_at(updated, 5)["v2"] == "v6"

    def test_old_path_offsets(self, fig1_instance):
        offsets = fig1_instance.old_path_offsets
        assert offsets["v1"] == 0
        assert offsets["v5"] == 4


class TestValidation:
    def test_rejects_missing_link_in_config(self):
        net = network_from_links([("a", "b"), ("b", "c")])
        with pytest.raises(ValueError):
            instance_from_paths(net, ["a", "b", "c"], ["a", "c"])

    def test_rejects_mismatched_endpoints(self):
        net = network_from_links([("a", "b"), ("b", "c"), ("a", "c")])
        with pytest.raises(ValueError, match="source and destination"):
            instance_from_paths(net, ["a", "b", "c"], ["b", "c"])

    def test_rejects_extra_rule_clash(self):
        net = network_from_links([("a", "b"), ("b", "c"), ("a", "c")])
        with pytest.raises(ValueError, match="clashes"):
            instance_from_paths(
                net, ["a", "b", "c"], ["a", "c"], extra_new_rules={"a": "b"}
            )

    def test_rejects_looping_config(self):
        net = network_from_links([("a", "b"), ("b", "a"), ("a", "c")])
        from repro.core.instance import UpdateInstance
        from repro.network.flows import Flow

        with pytest.raises(ValueError, match="loop"):
            UpdateInstance(
                network=net,
                flow=Flow("f", "a", "c"),
                old_config={"a": "b", "b": "a"},
                new_config={"a": "c"},
            )


class TestGenerators:
    def test_random_instance_is_reproducible(self):
        a = random_instance(8, seed=5)
        b = random_instance(8, seed=5)
        assert a.new_path == b.new_path

    def test_reversal_instance_structure(self):
        inst = reversal_instance(5)
        assert inst.new_path == ("v1", "v4", "v3", "v2", "v5")

    def test_segmented_instance_updates_are_local(self):
        inst = segmented_instance(100, seed=1, segments=2, max_segment_length=5)
        assert len(inst.switches_to_update) <= 2 * 6

    def test_config_from_path(self):
        assert config_from_path(["a", "b", "c"]) == {"a": "b", "b": "c"}

    def test_switches_to_update_excludes_unchanged(self):
        net = network_from_links([("a", "b"), ("b", "c"), ("b", "d"), ("d", "c")])
        inst = instance_from_paths(net, ["a", "b", "c"], ["a", "b", "d", "c"])
        # a keeps its next hop; b reroutes; d is installed.
        assert set(inst.switches_to_update) == {"b", "d"}
