"""The scenario pipeline: registry, store, executor, resume, CLI.

The hard guarantee under test: an interrupted-after-k-then-resumed run
writes a ``records.jsonl`` **byte-identical** to an uninterrupted run,
and serial/parallel/in-memory execution all see the same records.
"""

import json

import pytest

from repro.experiments.__main__ import main as cli_main
from repro.experiments.sweep import sweep_seed
from repro.pipeline import (
    ArtifactStore,
    RunContext,
    RunInterrupted,
    UnknownScenarioError,
    get_scenario,
    report_from_store,
    run_in_memory,
    run_to_store,
    scenario_names,
)
from repro.pipeline.store import StoreError, canonical_json

TINY_FIG9 = {"switch_counts": [20, 30], "instances_per_size": 2}

#: Deterministic fig7 grid: node budgets bound the search, wall-clock
#: budgets are sized to never bind, so records are machine-independent.
TINY_FIG7 = {
    "switch_counts": [10],
    "instances_per_size": 4,
    "opt_budget": 60.0,
    "or_budget": 60.0,
    "opt_node_budget": 20_000,
    "or_node_budget": 20_000,
}


# --- registry ----------------------------------------------------------

def test_registry_has_every_experiment():
    names = scenario_names()
    assert set(names) >= {
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig10-greedy",
        "fig11",
        "table2",
        "walkthrough",
        "faults",
        "sweep",
    }
    assert len(names) >= 11


def test_unknown_scenario_lists_valid_names():
    with pytest.raises(UnknownScenarioError) as excinfo:
        get_scenario("fig1")
    message = str(excinfo.value)
    assert "fig1" in message
    for name in ("fig10", "fig11", "table2"):
        assert name in message


def test_params_with_rejects_unknown_override():
    scenario = get_scenario("fig9")
    with pytest.raises(ValueError, match="unknown parameter"):
        scenario.params_with({"no_such_knob": 1})


def test_paper_preset_requires_paper_params():
    scenario = get_scenario("table2")
    with pytest.raises(ValueError, match="paper-scale preset"):
        scenario.params_with(paper=True)


def test_every_scenario_expands_a_unique_keyed_grid():
    for name in scenario_names():
        scenario = get_scenario(name)
        items = list(scenario.items(scenario.params_with()))
        assert items, name
        keys = [item["key"] for item in items]
        assert len(set(keys)) == len(keys), name


# --- the sweep_seed contract ------------------------------------------

def test_sweep_seed_pinned_values():
    # Part of the harness contract: figures cite these exact integers.
    assert sweep_seed(0, 10, 0) == 100_070
    assert sweep_seed(1, 20, 3) == 1_200_146
    assert sweep_seed(7, 8, 2) == 7_080_079


def test_sweep_items_follow_seed_contract():
    scenario = get_scenario("fig7")
    params = scenario.params_with(
        {"switch_counts": [10, 20], "instances_per_size": 2, "base_seed": 1}
    )
    items = list(scenario.items(params))
    assert [i["key"] for i in items] == ["n10-i0", "n10-i1", "n20-i0", "n20-i1"]
    assert [i["seed"] for i in items] == [
        sweep_seed(1, 10, 0),
        sweep_seed(1, 10, 1),
        sweep_seed(1, 20, 0),
        sweep_seed(1, 20, 1),
    ]


# --- artifact store ----------------------------------------------------

def test_store_roundtrip_and_manifest(tmp_path):
    store = ArtifactStore(root=tmp_path)
    handle = store.create("fig9", {"switch_counts": (20,)}, run_id="r1")
    handle.append({"key": "a", "value": 1})
    handle.append({"key": "b", "value": [1, 2]})
    handle.finish(status="complete", records=2)

    reopened = store.open("fig9", "r1")
    assert reopened.params == {"switch_counts": [20]}  # tuple -> list once
    assert reopened.load_records() == [
        {"key": "a", "value": 1},
        {"key": "b", "value": [1, 2]},
    ]
    assert reopened.completed_keys() == ["a", "b"]
    manifest = reopened.manifest
    assert manifest["status"] == "complete"
    assert manifest["records"] == 2
    assert manifest["scenario"] == "fig9"
    assert len(manifest["config_hash"]) == 16


def test_store_open_defaults_to_latest(tmp_path):
    store = ArtifactStore(root=tmp_path)
    store.create("fig9", {}, run_id="20240101T000000-1")
    store.create("fig9", {}, run_id="20240201T000000-1")
    assert store.open("fig9").run_id == "20240201T000000-1"
    assert store.run_ids("fig9") == [
        "20240101T000000-1",
        "20240201T000000-1",
    ]


def test_store_refuses_duplicate_run_id(tmp_path):
    store = ArtifactStore(root=tmp_path)
    store.create("fig9", {}, run_id="r1")
    with pytest.raises(StoreError, match="already exists"):
        store.create("fig9", {}, run_id="r1")


def test_store_create_claims_directory_atomically(tmp_path):
    # Regression (TOCTOU): a rival worker that grabbed the directory but
    # has not written its manifest yet sits exactly in the old
    # exists-check/mkdir window.  create() must lose cleanly instead of
    # sharing the directory.
    store = ArtifactStore(root=tmp_path)
    store.run_directory("fig9", "r1").mkdir(parents=True)
    with pytest.raises(StoreError, match="already exists"):
        store.create("fig9", {}, run_id="r1")


def _racing_create(args):
    root, run_id = args
    store = ArtifactStore(root=root)
    try:
        store.create("fig9", {"who": "racer"}, run_id=run_id)
        return "won"
    except StoreError:
        return "lost"


def test_concurrent_create_of_same_run_id_has_one_winner(tmp_path):
    import multiprocessing

    from repro.runtime import fork_available

    if not fork_available():
        pytest.skip("fork start method unavailable")
    context = multiprocessing.get_context("fork")
    with context.Pool(4) as pool:
        outcomes = pool.map(_racing_create, [(tmp_path, "raced")] * 8)
    assert outcomes.count("won") == 1
    assert outcomes.count("lost") == 7
    assert ArtifactStore(root=tmp_path).open("fig9", "raced").run_id == "raced"


def test_partial_trailing_line_is_truncated(tmp_path):
    store = ArtifactStore(root=tmp_path)
    handle = store.create("fig9", {}, run_id="r1")
    handle.append({"key": "a"})
    handle._close_records()
    with open(handle.records_path, "a") as f:
        f.write('{"key":"torn')  # died mid-write: no trailing newline
    assert handle.load_records() == [{"key": "a"}]
    # The torn bytes are gone; the next append starts on a clean line.
    assert handle.records_path.read_bytes() == b'{"key":"a"}\n'


def test_corrupt_interior_line_is_an_error(tmp_path):
    store = ArtifactStore(root=tmp_path)
    handle = store.create("fig9", {}, run_id="r1")
    handle.records_path.write_text('{"key":"a"}\nnot json\n{"key":"b"}\n')
    with pytest.raises(StoreError, match="corrupt record"):
        handle.load_records()


# --- executor: resume and determinism ---------------------------------

def test_interrupted_then_resumed_is_byte_identical(tmp_path):
    store = ArtifactStore(root=tmp_path)
    full = run_to_store("fig9", TINY_FIG9, store=store, run_id="full")
    assert full.summary.emitted == 4

    with pytest.raises(RunInterrupted):
        run_to_store("fig9", TINY_FIG9, store=store, run_id="cut", stop_after=2)
    cut = store.open("fig9", "cut")
    assert cut.manifest["status"] == "running"  # what a kill leaves behind
    with open(cut.records_path, "a") as f:
        f.write('{"key":"torn')  # and it died mid-write

    resumed = run_to_store("fig9", store=store, run_id="cut", resume=True)
    assert resumed.summary.skipped == 2
    assert resumed.summary.emitted == 2
    assert (
        full.handle.records_path.read_bytes()
        == resumed.handle.records_path.read_bytes()
    )
    assert resumed.handle.manifest["status"] == "complete"
    assert (
        resumed.handle.manifest["config_hash"]
        == full.handle.manifest["config_hash"]
    )


def test_resume_rejects_changed_grid(tmp_path):
    store = ArtifactStore(root=tmp_path)
    handle = store.create("fig9", get_scenario("fig9").params_with(TINY_FIG9))
    handle.append({"key": "not-in-any-grid"})
    handle._close_records()
    with pytest.raises(ValueError, match="absent from the item grid"):
        run_to_store("fig9", store=store, run_id=handle.run_id, resume=True)


def test_serial_and_parallel_records_are_identical(tmp_path):
    store = ArtifactStore(root=tmp_path)
    run_to_store("fig7", TINY_FIG7, store=store, run_id="serial")
    run_to_store(
        "fig7", TINY_FIG7, ctx=RunContext(workers=2), store=store, run_id="par"
    )
    serial = store.open("fig7", "serial").records_path.read_bytes()
    parallel = store.open("fig7", "par").records_path.read_bytes()
    assert serial == parallel


def test_in_memory_matches_stored_aggregation(tmp_path):
    store = ArtifactStore(root=tmp_path)
    stored = run_to_store("fig9", TINY_FIG9, store=store, run_id="r1")
    in_memory = run_in_memory("fig9", TINY_FIG9)
    reported = report_from_store("fig9", store=store, run_id="r1")
    assert stored.aggregate().render() == in_memory.render() == reported.render()


def test_enough_predicate_stops_fig11_early(tmp_path):
    overrides = {"switch_count": 40, "instances": 2, "opt_budget": 30.0}
    store = ArtifactStore(root=tmp_path)
    stored = run_to_store("fig11", overrides, store=store, run_id="r1")
    grid = len(list(get_scenario("fig11").items(stored.params)))
    assert stored.summary.satisfied_early
    assert len(stored.records) < grid
    result = stored.aggregate()
    assert len(result.chronus_times) == 2


def test_records_are_canonical_json_lines(tmp_path):
    store = ArtifactStore(root=tmp_path)
    stored = run_to_store("fig9", TINY_FIG9, store=store, run_id="r1")
    lines = stored.handle.records_path.read_text().splitlines()
    for line, record in zip(lines, stored.records):
        assert line == canonical_json(json.loads(line))
        assert json.loads(line) == record


# --- the unified CLI (in-process) -------------------------------------

def test_cli_rejects_inexact_name(capsys):
    assert cli_main(["fig1"]) == 2
    err = capsys.readouterr().err
    assert "unknown scenario 'fig1'" in err
    assert "fig10" in err and "fig11" in err


def test_cli_list_names_every_scenario(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    for name in scenario_names():
        assert name in out


def test_cli_run_interrupt_resume_report(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
    base = [
        "fig9",
        "--run-id",
        "r1",
        "--set",
        "switch_counts=[20]",
        "--set",
        "instances_per_size=3",
        "--quiet",
        "--no-report",
    ]
    assert cli_main(["run", *base, "--stop-after", "1"]) == 3
    assert cli_main(["resume", "fig9", "--run-id", "r1", "--quiet", "--no-report"]) == 0
    capsys.readouterr()
    assert cli_main(["report", "fig9", "--run-id", "r1"]) == 0
    assert "Fig. 9" in capsys.readouterr().out

    manifest = json.loads((tmp_path / "fig9" / "r1" / "manifest.json").read_text())
    assert manifest["status"] == "complete"
    assert manifest["records"] == 3
    assert manifest["params"]["switch_counts"] == [20]


def test_cli_report_without_runs_fails_cleanly(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
    assert cli_main(["report", "fig9"]) == 2
    assert "no runs" in capsys.readouterr().err
