"""Unit tests for the directed network graph."""

import pytest

from repro.network.graph import DEFAULT_CAPACITY, Link, Network, network_from_links


class TestLink:
    def test_endpoints(self):
        link = Link("a", "b", capacity=2.0, delay=3)
        assert link.endpoints == ("a", "b")
        assert link.capacity == 2.0
        assert link.delay == 3

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Link("a", "a")

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            Link("a", "b", capacity=0.0)

    def test_rejects_zero_delay(self):
        with pytest.raises(ValueError, match="delay"):
            Link("a", "b", delay=0)

    def test_rejects_fractional_delay(self):
        with pytest.raises(ValueError, match="delay"):
            Link("a", "b", delay=1.5)


class TestNetwork:
    def test_add_link_registers_switches(self):
        net = Network()
        net.add_link("a", "b")
        assert "a" in net and "b" in net
        assert len(net) == 2

    def test_duplicate_link_rejected(self):
        net = Network()
        net.add_link("a", "b")
        with pytest.raises(ValueError, match="duplicate"):
            net.add_link("a", "b")

    def test_antiparallel_links_allowed(self):
        net = Network()
        net.add_link("a", "b", capacity=1.0)
        net.add_link("b", "a", capacity=2.0)
        assert net.capacity("a", "b") == 1.0
        assert net.capacity("b", "a") == 2.0

    def test_ensure_link_idempotent(self):
        net = Network()
        first = net.ensure_link("a", "b", capacity=5.0)
        second = net.ensure_link("a", "b", capacity=9.0)
        assert first is second
        assert net.capacity("a", "b") == 5.0

    def test_missing_link_raises_keyerror(self):
        net = Network()
        net.add_switch("a")
        with pytest.raises(KeyError):
            net.link("a", "b")
        assert net.get_link("a", "b") is None

    def test_successors_predecessors(self):
        net = network_from_links([("a", "b"), ("a", "c"), ("c", "b")])
        assert net.successors("a") == ["b", "c"]
        assert net.predecessors("b") == ["a", "c"]
        assert net.successors("b") == []

    def test_out_in_links(self):
        net = network_from_links([("a", "b"), ("a", "c")])
        assert {l.dst for l in net.out_links("a")} == {"b", "c"}
        assert [l.src for l in net.in_links("b")] == ["a"]

    def test_copy_is_independent(self):
        net = network_from_links([("a", "b")])
        clone = net.copy()
        clone.add_link("b", "c")
        assert not net.has_link("b", "c")
        assert clone.has_link("b", "c")

    def test_delay_lookup(self):
        net = Network()
        net.add_link("a", "b", delay=4)
        assert net.delay("a", "b") == 4

    def test_switch_insertion_order_preserved(self):
        net = Network()
        for name in ("z", "a", "m"):
            net.add_switch(name)
        assert net.switches == ["z", "a", "m"]

    def test_network_from_links_uniform_attributes(self):
        net = network_from_links([("a", "b"), ("b", "c")], capacity=7.0, delay=2)
        assert net.capacity("b", "c") == 7.0
        assert net.delay("a", "b") == 2
