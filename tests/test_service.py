"""The update service: determinism, conformance, admission and merging.

The hard guarantee under test is **lockstep determinism**: one seed,
one request stream, byte-identical cell records across runs -- the
virtual-time loop makes the whole service a pure function of its seed.
On top of that: every planned request must verify conformant through
``repro.validate``, the admission controller must never let overlapping
footprints run concurrently, and queued same-tenant requests must merge
into one planning call with earlier intents superseded.
"""

import asyncio
import json

import pytest

from repro.pipeline.store import canonical_json
from repro.service import (
    AdmissionController,
    ServiceConfig,
    build_workload,
    run_cell,
    run_virtual,
)
from repro.service.requests import TERMINAL
from repro.service.workload import _links_of

SMALL = ServiceConfig(pods=4, pod_size=6, requests=24, mean_interarrival=1.5, seed=11)


@pytest.fixture(scope="module")
def small_report():
    return run_cell(SMALL)


# --- virtual-time loop -------------------------------------------------

class TestVirtualTimeLoop:
    def test_sleeps_cost_no_wall_time_and_order_deterministically(self):
        async def main():
            log = []

            async def worker(name, delay, period, count):
                await asyncio.sleep(delay)
                for _ in range(count):
                    log.append((name, round(asyncio.get_running_loop().time(), 6)))
                    await asyncio.sleep(period)

            await asyncio.gather(worker("a", 0.8, 0.6, 3), worker("b", 1.1, 0.6, 3))
            return log

        first = run_virtual(main())
        second = run_virtual(main())
        assert first == second
        assert first[0] == ("a", 0.8)
        assert first[1] == ("b", 1.1)

    def test_idle_loop_raises_instead_of_deadlocking(self):
        async def main():
            await asyncio.Event().wait()  # nobody will ever set this

        with pytest.raises(RuntimeError, match="idle"):
            run_virtual(main())


# --- workload ----------------------------------------------------------

class TestWorkload:
    def test_workload_is_seed_deterministic(self):
        a = build_workload(4, 6, 20, 2.0, seed=5)
        b = build_workload(4, 6, 20, 2.0, seed=5)
        assert [p for p in a.pods] == [p for p in b.pods]
        assert a.requests == b.requests
        assert build_workload(4, 6, 20, 2.0, seed=6).requests != a.requests

    def test_paths_are_valid_and_distinct(self):
        workload = build_workload(5, 7, 10, 2.0, seed=3)
        for pod in workload.pods:
            assert pod.path_a != pod.path_b
            assert pod.path_a[0] == pod.path_b[0] == pod.source
            assert pod.path_a[-1] == pod.path_b[-1] == pod.destination
            for path in (pod.path_a, pod.path_b):
                for src, dst in _links_of(path):
                    assert workload.network.has_link(src, dst)

    def test_paired_pods_share_a_crossover_link(self):
        workload = build_workload(4, 6, 10, 2.0, seed=3)
        p0, p1 = workload.pods[0], workload.pods[1]
        assert p0.footprint & p1.footprint
        p2, p3 = workload.pods[2], workload.pods[3]
        assert not (p0.footprint | p1.footprint) & (p2.footprint | p3.footprint)

    def test_disjoint_without_sharing(self):
        workload = build_workload(4, 6, 10, 2.0, seed=3, share_links=False)
        for i, pod in enumerate(workload.pods):
            for other in workload.pods[i + 1:]:
                assert not pod.footprint & other.footprint


# --- admission controller ----------------------------------------------

def _fp(*links):
    return frozenset(links)


class TestAdmission:
    def test_disjoint_requests_admit_immediately(self):
        ctrl = AdmissionController()
        d1, b1 = ctrl.offer("r1", _fp(("a", "b")))
        d2, b2 = ctrl.offer("r2", _fp(("c", "d")))
        assert (d1, d2) == ("admitted", "admitted")
        assert b1.token != b2.token

    def test_conflicting_request_queues_fifo(self):
        ctrl = AdmissionController()
        _, batch = ctrl.offer("r1", _fp(("a", "b")))
        assert ctrl.offer("r2", _fp(("a", "b"), ("b", "c")))[0] == "queued"
        assert ctrl.queue_depth == 1
        ready = ctrl.release(batch.token)
        assert [b.items for b in ready] == [["r2"]]
        assert ctrl.queue_depth == 0

    def test_queued_overlap_prevents_leapfrogging(self):
        # r3 conflicts only with *queued* r2; admitting it would reorder
        # overlapping requests, so it must queue behind r2.
        ctrl = AdmissionController()
        _, batch = ctrl.offer("r1", _fp(("a", "b")))
        ctrl.offer("r2", _fp(("a", "b"), ("x", "y")))
        decision, _ = ctrl.offer("r3", _fp(("x", "y")))
        assert decision == "queued"
        ready = ctrl.release(batch.token)
        assert [b.items for b in ready] == [["r2", "r3"]]

    def test_release_merges_overlapping_queue_groups(self):
        ctrl = AdmissionController()
        _, batch = ctrl.offer("r1", _fp(("a", "b"), ("c", "d")))
        ctrl.offer("r2", _fp(("a", "b")))
        ctrl.offer("r3", _fp(("c", "d")))
        ctrl.offer("r4", _fp(("a", "b")))
        ready = ctrl.release(batch.token)
        # r2 and r4 overlap each other -> one merged batch; r3 only ever
        # overlapped the finished blocker -> dispatched independently.
        assert [b.items for b in ready] == [["r2", "r4"], ["r3"]]
        assert ready[0].footprint == _fp(("a", "b"))
        assert ready[1].footprint == _fp(("c", "d"))

    def test_release_keeps_still_blocked_groups_queued(self):
        ctrl = AdmissionController()
        _, b1 = ctrl.offer("r1", _fp(("a", "b")))
        _, b2 = ctrl.offer("r2", _fp(("c", "d")))
        ctrl.offer("r3", _fp(("a", "b")))
        ctrl.offer("r4", _fp(("c", "d")))
        ready = ctrl.release(b1.token)
        assert [b.items for b in ready] == [["r3"]]  # r4 still blocked by r2
        assert ctrl.queue_depth == 1

    def test_full_queue_rejects(self):
        ctrl = AdmissionController(max_queue=1)
        ctrl.offer("r1", _fp(("a", "b")))
        assert ctrl.offer("r2", _fp(("a", "b")))[0] == "queued"
        assert ctrl.offer("r3", _fp(("a", "b")))[0] == "rejected"
        assert ctrl.rejected == 1

    def test_reset_clears_everything(self):
        ctrl = AdmissionController()
        ctrl.offer("r1", _fp(("a", "b")))
        ctrl.offer("r2", _fp(("a", "b")))
        ctrl.reset()
        assert ctrl.queue_depth == 0
        assert ctrl.in_flight_count == 0
        assert ctrl.offer("r3", _fp(("a", "b")))[0] == "admitted"


# --- the service end-to-end --------------------------------------------

class TestServiceLockstep:
    def test_same_seed_is_byte_identical(self, small_report):
        again = run_cell(SMALL)
        assert canonical_json(small_report.to_record()) == canonical_json(
            again.to_record()
        )

    def test_different_seed_differs(self, small_report):
        other = run_cell(ServiceConfig(
            pods=4, pod_size=6, requests=24, mean_interarrival=1.5, seed=12
        ))
        assert canonical_json(other.to_record()) != canonical_json(
            small_report.to_record()
        )

    def test_record_is_json_round_trippable(self, small_report):
        record = small_report.to_record()
        assert json.loads(canonical_json(record)) == json.loads(
            canonical_json(json.loads(json.dumps(record)))
        )


class TestServiceOutcomes:
    def test_every_request_reaches_a_terminal_status(self, small_report):
        assert len(small_report.requests) == SMALL.requests
        for request in small_report.requests:
            assert request["status"] in TERMINAL

    def test_all_planned_requests_verified_conformant(self, small_report):
        executed = [r for r in small_report.requests if r["status"] == "completed"]
        assert executed, "workload produced no completed updates"
        for request in executed:
            assert request["conformant"] is True
        assert small_report.summary["conformant_all"] is True

    def test_no_traffic_blackholed(self, small_report):
        assert small_report.summary["blackholed"] == 0.0

    def test_metrics_are_present_and_sane(self, small_report):
        summary = small_report.summary
        assert summary["requests"] == SMALL.requests
        assert summary["completed"] > 0
        assert summary["virtual_updates_per_sec"] > 0
        latency = summary["latency"]
        assert latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]
        assert summary["queue"]["max"] >= 0

    def test_same_tenant_burst_merges_and_supersedes(self):
        # One pod, near-simultaneous requests: the first admits, the rest
        # queue, merge into one batch, and all but the last supersede.
        report = run_cell(ServiceConfig(
            pods=1,
            pod_size=6,
            requests=6,
            mean_interarrival=0.05,
            seed=2,
            share_links=False,
        ))
        statuses = [r["status"] for r in report.requests]
        assert statuses[0] == "completed"
        assert "superseded" in statuses
        assert report.summary["merged_batches"] >= 1
        merged = [r for r in report.requests if r["status"] == "superseded"]
        for request in merged:
            assert request["batch"] is not None

    def test_tiny_queue_rejects_overflow(self):
        report = run_cell(ServiceConfig(
            pods=1,
            pod_size=6,
            requests=8,
            mean_interarrival=0.05,
            seed=2,
            max_queue=1,
            share_links=False,
        ))
        assert report.summary["rejected"] > 0
        # Rejections never corrupt later requests: everything else is
        # still served conformantly.
        assert report.summary["conformant_all"] is True
        assert report.summary["completed"] >= 1


class TestScenarioRegistration:
    def test_service_scenario_is_registered(self):
        from repro.pipeline.scenario import get_scenario

        scenario = get_scenario("service")
        params = scenario.params_with()
        items = scenario.items(params)
        assert [item["key"] for item in items] == [
            f"cell{i}" for i in range(int(params["cells"]))
        ]

    def test_scenario_cell_matches_direct_run(self):
        from repro.pipeline.context import WorkerContext
        from repro.pipeline.scenario import get_scenario

        scenario = get_scenario("service")
        params = scenario.params_with(
            {"cells": 1, "pods": 3, "pod_size": 5, "requests": 8}
        )
        item = scenario.items(params)[0]
        record = scenario.evaluate(item, params, WorkerContext())
        direct = run_cell(ServiceConfig(
            pods=3,
            pod_size=5,
            requests=8,
            mean_interarrival=float(params["mean_interarrival"]),
            seed=int(item["seed"]),
            verify=True,
        )).to_record()
        direct["key"] = item["key"]
        assert canonical_json(record) == canonical_json(direct)
