"""Unit tests for Algorithm 3 (dependency relation sets).

The motivating example's t0 relation set is pinned against the paper's
Fig. 5: ``O_t0`` contains the chains ``(v2 -> v4)`` and ``(v3 -> v1 -> v5)``
and only ``v2`` may update.  Later steps differ slightly because our drain
accounting is exact where the paper's walk-through is one step more
conservative (see DESIGN.md, "Faithfulness decisions").
"""

import pytest

from repro.core.dependency import (
    dependency_relations,
    drain_table,
    last_old_departure,
    merge_relations,
)


class TestDrainAccounting:
    def test_no_updates_means_infinite_flow(self, fig1_instance):
        assert last_old_departure(fig1_instance, {}, "v3") == float("inf")

    def test_upstream_update_bounds_drain(self, fig1_instance):
        # v2 updated at 0 applies its new rule to departures at t >= 0, so
        # the last old emission through v2 is e = -2 (departing v2 at -1),
        # which departs v4 (offset 3) at time 1.
        assert last_old_departure(fig1_instance, {"v2": 0}, "v4") == 1

    def test_own_update_counts(self, fig1_instance):
        assert last_old_departure(fig1_instance, {"v3": 5}, "v3") == 4

    def test_off_path_switch_is_none(self, fig1_instance):
        assert last_old_departure(fig1_instance, {}, "nope") is None

    def test_downstream_update_does_not_gate_upstream(self, fig1_instance):
        assert last_old_departure(fig1_instance, {"v4": 0}, "v2") == float("inf")

    def test_drain_table_matches_pointwise(self, fig1_instance):
        applied = {"v2": 0, "v3": 1}
        table = drain_table(fig1_instance, applied)
        for node in fig1_instance.old_path:
            assert table[node] == last_old_departure(fig1_instance, applied, node)


class TestFig5WalkThrough:
    def test_t0_chains(self, fig1_instance):
        deps = dependency_relations(
            fig1_instance, list(fig1_instance.switches_to_update), {}, 0
        )
        assert not deps.has_cycle
        assert sorted(map(tuple, deps.chains)) == [("v2", "v4"), ("v3", "v1", "v5")]
        assert deps.heads == ["v2", "v3"]

    def test_t1_all_drained_constraints_released(self, fig1_instance):
        # With exact drain accounting, v2's update at t0 already drained the
        # old flow off every hazard link by t1, so all remaining switches
        # become singleton chains.  (The paper's Fig. 5 walk-through keeps
        # the chain (v3 v1 v5) one step longer -- its liveness reading is a
        # step more conservative; both resulting schedules are valid and
        # makespan-4.)  Loop hazards are Algorithm 4's business, not ours.
        deps = dependency_relations(
            fig1_instance, ["v1", "v3", "v4", "v5"], {"v2": 0}, 1
        )
        assert sorted(map(tuple, deps.chains)) == [("v1",), ("v3",), ("v4",), ("v5",)]
        assert not deps.has_cycle

    def test_t2_chains(self, fig1_instance):
        deps = dependency_relations(
            fig1_instance, ["v4", "v5"], {"v2": 0, "v3": 1, "v1": 1}, 2
        )
        assert sorted(map(tuple, deps.chains)) == [("v4",), ("v5",)]

    def test_t3_single_free_switch(self, fig1_instance):
        deps = dependency_relations(
            fig1_instance, ["v5"], {"v2": 0, "v3": 1, "v1": 2, "v4": 2}, 3
        )
        assert deps.chains == [["v5"]]
        assert deps.heads == ["v5"]


class TestDeferred:
    def test_wait_for_unstoppable_old_flow_is_deferred(self):
        # The source's detour lands on a link still fed by an old-path
        # switch that never updates itself: Algorithm 3 can express no
        # switch ordering, so the candidate is deferred.
        from repro.core.instance import instance_from_paths
        from repro.network.graph import Network

        net = Network()
        for src, dst, delay in [
            ("a", "b", 1), ("b", "c", 1), ("c", "d", 1), ("a", "c", 2),
        ]:
            net.add_link(src, dst, capacity=1.0, delay=delay)
        instance = instance_from_paths(net, ["a", "b", "c", "d"], ["a", "c", "d"])
        deps = dependency_relations(instance, ["a"], {}, 0)
        assert "a" in deps.deferred
        assert deps.heads == []


class TestMergeRelations:
    def test_chain_merge_on_common_element(self):
        chains, cyclic = merge_relations([("a", "b"), ("b", "c")], ["a", "b", "c"])
        assert chains == [["a", "b", "c"]]
        assert not cyclic

    def test_disjoint_chains(self):
        chains, cyclic = merge_relations([("a", "b")], ["a", "b", "c"])
        assert sorted(map(tuple, chains)) == [("a", "b"), ("c",)]
        assert not cyclic

    def test_cycle_detection(self):
        chains, cyclic = merge_relations([("a", "b"), ("b", "a")], ["a", "b"])
        assert cyclic

    def test_singletons_for_unconstrained(self):
        chains, cyclic = merge_relations([], ["x", "y"])
        assert chains == [["x"], ["y"]]

    def test_diamond_merges_into_one_chain(self):
        chains, cyclic = merge_relations(
            [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")], ["a", "b", "c", "d"]
        )
        assert not cyclic
        assert len(chains) == 1
        chain = chains[0]
        assert chain.index("a") < chain.index("b") < chain.index("d")
        assert chain.index("a") < chain.index("c") < chain.index("d")
