#!/usr/bin/env python3
"""Plan-conformance gate entry point (``make validate``).

Sweeps N seeded instances through every protocol and fails -- with a
readable diff of each mismatch -- on any disagreement between the planner,
the independent verifier (:mod:`repro.validate.verifier`) and the fluid
simulator (:func:`repro.validate.differential_replay`).

Usage::

    python scripts/validate.py                 # 50 instances x 4 protocols
    python scripts/validate.py --quick         # 8 instances (make test path)
    python scripts/validate.py -n 200 -s 12    # bigger sweep, 12 switches
    python scripts/validate.py --no-replay     # analytic engines only

Exit status: 0 when every engine pair agrees on every instance, 1
otherwise.  Seeds are deterministic (the figures' ``sweep_seed``
contract), so a failure reproduces anywhere.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.pipeline.cli import (  # noqa: E402
    add_quick_flag,
    add_quiet_flag,
    finish_progress,
    progress_printer,
    script_parser,
)
from repro.validate.gate import DEFAULT_PROTOCOLS, run_gate  # noqa: E402


def main(argv=None) -> int:
    parser = script_parser(__doc__)
    parser.add_argument(
        "-n",
        "--instances",
        type=int,
        default=50,
        help="seeded instances to sweep (default 50)",
    )
    parser.add_argument(
        "-s",
        "--switches",
        type=int,
        default=8,
        help="network size of every instance (default 8)",
    )
    parser.add_argument(
        "--base-seed", type=int, default=0, help="base of the sweep_seed contract"
    )
    parser.add_argument(
        "--protocols",
        nargs="+",
        default=list(DEFAULT_PROTOCOLS),
        choices=list(DEFAULT_PROTOCOLS),
        help="protocols to gate (default: all four)",
    )
    add_quick_flag(
        parser, "8 instances -- the default `make test` smoke configuration"
    )
    parser.add_argument(
        "--no-replay",
        action="store_true",
        help="skip the fluid differential replay (planner<->verifier only)",
    )
    add_quiet_flag(parser)
    args = parser.parse_args(argv)

    instances = 8 if args.quick else args.instances

    started = time.monotonic()
    report = run_gate(
        instance_count=instances,
        switch_count=args.switches,
        base_seed=args.base_seed,
        protocols=tuple(args.protocols),
        replay=not args.no_replay,
        progress=progress_printer("validated instance", quiet=args.quiet),
    )
    finish_progress(quiet=args.quiet)
    elapsed = time.monotonic() - started
    print(report.describe())
    print(f"({elapsed:.1f}s)")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
