#!/usr/bin/env python3
"""Planner-registry smoke gate: every scheme registers and dispatches.

The registry (DESIGN.md §15) is the single dispatch point for every
figure, the gate and the service; this script (``make planner-smoke``,
CI's ``quick-bench`` job) fails fast if a refactor drops a planner or
breaks registry-routed evaluation:

1. the registered name set is exactly {chronus, or, tp, opt, aug};
2. capability flags still route verification correctly (tp is the only
   two-phase scheme, opt/or the only exact ones);
3. unknown names raise :class:`UnknownSchemeError` naming the registry;
4. a tiny deterministic sweep dispatches *all five* schemes through the
   registry with the independent verifier on -- every outcome must come
   back with ``verifier_agrees`` True;
5. AUG at epsilon=0 is outcome-identical to Chronus on every instance.

Usage::

    python scripts/planner_smoke.py
    python scripts/planner_smoke.py --instances 8 --quiet

Exit status: 0 when every check holds, 1 otherwise.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.pipeline.cli import script_parser  # noqa: E402

EXPECTED = {"chronus", "or", "tp", "opt", "aug"}

#: Deterministic budgets: the exact searches stop on explored nodes, the
#: wall clock never binds.
BUDGETS = dict(
    opt_budget=600.0,
    or_budget=600.0,
    opt_node_budget=20_000,
    or_node_budget=20_000,
)


def main(argv=None) -> int:
    parser = script_parser(__doc__)
    parser.add_argument(
        "--instances",
        type=int,
        default=4,
        metavar="N",
        help="seeded instances in the dispatch sweep (default 4)",
    )
    parser.add_argument(
        "--switches", type=int, default=12, help="network size (default 12)"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-check lines"
    )
    args = parser.parse_args(argv)

    from repro.experiments.sweep import mixed_instance, run_instance, sweep_seed
    from repro.updates.registry import (
        UnknownSchemeError,
        available_schemes,
        get_planner,
    )

    failures = []

    def check(ok: bool, label: str, detail: str = "") -> None:
        if not args.quiet or not ok:
            print(f"{'ok  ' if ok else 'FAIL'} {label}" + (f": {detail}" if detail else ""))
        if not ok:
            failures.append(label)

    names = set(available_schemes())
    check(names == EXPECTED, "registered schemes", f"{sorted(names)}")

    check(
        {n for n in names if get_planner(n).two_phase} == {"tp"},
        "two_phase flag routes tp alone",
    )
    check(
        {n for n in names if get_planner(n).exact} == {"opt", "or"},
        "exact flag routes opt/or alone",
    )

    try:
        get_planner("chrnous")
        check(False, "unknown scheme raises")
    except UnknownSchemeError as exc:
        check("chronus" in exc.valid, "unknown scheme raises", str(exc))

    all_schemes = tuple(sorted(names))
    disagreements = 0
    aug_mismatches = 0
    for index in range(args.instances):
        seed = sweep_seed(0, args.switches, index)
        instance = mixed_instance(args.switches, seed)
        outcomes = run_instance(
            instance, seed, schemes=all_schemes, verify=True, **BUDGETS
        )
        for name, outcome in outcomes.items():
            if outcome.verifier_agrees is not True:
                disagreements += 1
                print(f"     {name} seed={seed}: verifier_agrees={outcome.verifier_agrees}")
        chronus, aug = outcomes["chronus"], outcomes["aug"]
        if (aug.congestion_free, aug.congested_timed_links, aug.makespan) != (
            chronus.congestion_free,
            chronus.congested_timed_links,
            chronus.makespan,
        ):
            aug_mismatches += 1
    check(
        disagreements == 0,
        "registry dispatch x independent verifier",
        f"{args.instances} instance(s) x {len(all_schemes)} scheme(s)",
    )
    check(aug_mismatches == 0, "aug at epsilon=0 equals chronus")

    if failures:
        print(f"planner smoke: {len(failures)} check(s) FAILED")
        return 1
    if not args.quiet:
        print("planner smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
