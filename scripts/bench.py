#!/usr/bin/env python3
"""Perf-trajectory entry point: run the harness, append to BENCH_sweep.json.

Usage::

    python scripts/bench.py            # full sizes (minutes)
    python scripts/bench.py --quick    # small sizes (CI smoke / make bench)
    python scripts/bench.py --no-write # measure only, leave the JSON alone

Exit status is non-zero when a measured invariant fails:

* parallel and serial sweep records differ (determinism is a hard
  guarantee, checked on any machine), or
* on a machine with 2+ usable cores, the parallel sweep is more than
  1.2x slower than the serial sweep (the pool must never cost more than
  it gives; single-core boxes skip this gate because a process pool
  cannot beat serial there).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks import perf_harness  # noqa: E402  (path setup above)

SLOWDOWN_LIMIT = 1.2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for smoke runs"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="pool size for the sweep benchmark"
    )
    parser.add_argument(
        "--no-write", action="store_true", help="do not append to BENCH_sweep.json"
    )
    args = parser.parse_args(argv)

    record = perf_harness.collect(quick=args.quick, workers=args.workers)
    record["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    if not args.no_write:
        history = perf_harness.append_record(record)
        print(
            f"appended record #{len(history)} to {perf_harness.BENCH_FILE.name} "
            f"(cpus={record['cpus']})"
        )

    failures = []
    sweep = record["sweep"]
    if not sweep["identical_records"]:
        failures.append("parallel sweep records differ from serial records")
    cpus = record["cpus"]
    if cpus >= 2 and sweep["serial_seconds"] > 0:
        slowdown = sweep["parallel_seconds"] / sweep["serial_seconds"]
        if slowdown > SLOWDOWN_LIMIT:
            failures.append(
                f"parallel sweep {slowdown:.2f}x slower than serial on "
                f"{cpus} cores (limit {SLOWDOWN_LIMIT}x)"
            )
    for failure in failures:
        print(f"BENCH GATE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
