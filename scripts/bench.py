#!/usr/bin/env python3
"""Perf-trajectory entry point: run the harness, append to BENCH_sweep.json.

Usage::

    python scripts/bench.py            # full sizes (minutes)
    python scripts/bench.py --quick    # small sizes (CI smoke / make bench)
    python scripts/bench.py --no-write # measure only, leave the JSON alone
    python scripts/bench.py --profile  # attach a repro.perf phase breakdown

Exit status is non-zero when a measured invariant fails:

* parallel and serial sweep records differ (determinism is a hard
  guarantee, checked on any machine), or
* on a machine with 2+ usable cores, the parallel sweep is more than
  1.2x slower than the serial sweep (the pool must never cost more than
  it gives; single-core boxes skip this gate because a process pool
  cannot beat serial there), or
* the plan-conformance verifier disagrees with any planner on the
  seeded sweep (recorded as ``verifier_agrees``; skip with
  ``--no-verify``), or
* greedy regresses past 1.3x the best prior full-size record from the
  same machine class at *any* measured size -- 400 up to 100000
  switches (same ``cpus`` count; runs on other machine classes are not
  comparable and skip the gate; sizes without a comparable prior are
  skipped individually), or
* OPT node throughput drops under 1/1.3x the best prior full-size
  record from the same machine class measuring the *same engine* on the
  same workload (engines count nodes at different granularities, so a
  new engine's first record starts its own baseline), or
* the update-service bench is non-deterministic or non-conformant (hard
  failures on any machine), or its wall-clock updates/sec drops under
  1/1.3x the best prior full-size record from the same machine class on
  the same workload (equal cell/pod/request shape).

Full records also carry a ``memory`` column: peak RSS per greedy bench
stage, measured in a forked child per size (see
``benchmarks.perf_harness.bench_greedy_memory``).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks import perf_harness  # noqa: E402  (path setup above)
from repro.perf import perf  # noqa: E402
from repro.pipeline.cli import add_quick_flag, script_parser  # noqa: E402
from repro.validate.gate import run_gate  # noqa: E402

SLOWDOWN_LIMIT = 1.2
GREEDY_GATE_LIMIT = 1.3
OPT_GATE_LIMIT = 1.3
SERVICE_GATE_LIMIT = 1.3


def greedy_regression(record, history):
    """Failure message when any greedy size regressed vs. priors, else None.

    Every size in the current record is gated against the best prior
    measurement of that same size; sizes no prior record measured are
    skipped individually (so adding a new bench size never fails its
    first run).  Only prior full-size records from the same machine class
    (equal ``cpus``) are comparable; quick records measure different
    sizes and other machine classes have different clocks, so both are
    skipped.  Profiled records are skipped on both sides -- the enabled
    perf counters inflate the tracker hot path, so their timings are not
    comparable to plain runs.
    """
    if "profile" in record:
        return None
    greedy = record.get("greedy") or {}
    comparable = [
        entry["greedy"]
        for entry in history
        if isinstance(entry, dict)
        and not entry.get("quick")
        and "profile" not in entry
        and entry.get("cpus") == record.get("cpus")
        and isinstance(entry.get("greedy"), dict)
    ]
    failures = []
    for size, current in sorted(greedy.items(), key=lambda item: int(item[0])):
        if not isinstance(current, (int, float)):
            continue
        prior = [
            entry[size]
            for entry in comparable
            if isinstance(entry.get(size), (int, float))
        ]
        if not prior:
            continue
        best = min(prior)
        if best > 0 and current > GREEDY_GATE_LIMIT * best:
            failures.append(
                f"greedy[{size}] took {current:.3f}s, over "
                f"{GREEDY_GATE_LIMIT}x the best prior record {best:.3f}s "
                f"(machine class cpus={record.get('cpus')})"
            )
    return "; ".join(failures) if failures else None


def opt_regression(record, history):
    """Failure message when OPT node throughput regressed, else None.

    Gates ``opt.nodes_per_sec`` against the best prior full-size record
    from the same machine class (equal ``cpus``) measuring the *same
    engine* on the *same workload* (equal ``switches`` and
    ``instances``).  The engines count explored nodes at different
    granularities (DESIGN.md §13), so cross-engine throughput is not
    comparable and a new engine's first record never fails its own gate.
    Prior records without an ``engine`` field predate the engine split
    and measured the reference engine.
    """
    if "profile" in record or record.get("quick"):
        return None
    opt = record.get("opt")
    if not isinstance(opt, dict):
        return None
    current = opt.get("nodes_per_sec")
    if not isinstance(current, (int, float)):
        return None
    engine = opt.get("engine", "reference")
    prior = []
    for entry in history:
        if not isinstance(entry, dict) or entry.get("quick") or "profile" in entry:
            continue
        if entry.get("cpus") != record.get("cpus"):
            continue
        other = entry.get("opt")
        if not isinstance(other, dict):
            continue
        if other.get("engine", "reference") != engine:
            continue
        if (
            other.get("switches") != opt.get("switches")
            or other.get("instances") != opt.get("instances")
        ):
            continue
        best = other.get("nodes_per_sec")
        if isinstance(best, (int, float)):
            prior.append(best)
    if not prior:
        return None
    best = max(prior)
    if best > 0 and current * OPT_GATE_LIMIT < best:
        return (
            f"opt[{engine}] throughput {current:.1f} nodes/s is under "
            f"1/{OPT_GATE_LIMIT}x the best prior record {best:.1f} nodes/s "
            f"(machine class cpus={record.get('cpus')})"
        )
    return None


def service_regression(record, history):
    """Failure message when the service bench regressed, else None.

    Two hard invariants fail on any machine: the lockstep re-run must be
    byte-identical (``deterministic``) and every planned update must
    verify conformant (``conformant``).  Wall-clock ``updates_per_sec``
    is gated like OPT throughput: against the best prior full-size
    record from the same machine class (equal ``cpus``) measuring the
    same workload shape (equal ``cells``/``pods``/``requests``); quick
    and profiled records are skipped on both sides.
    """
    service = record.get("service")
    if not isinstance(service, dict):
        return None
    failures = []
    if service.get("deterministic") is False:
        failures.append("service bench is not lockstep-deterministic")
    if service.get("conformant") is False:
        failures.append("service bench produced a non-conformant plan")
    current = service.get("updates_per_sec")
    if (
        not failures
        and "profile" not in record
        and not record.get("quick")
        and isinstance(current, (int, float))
    ):
        prior = []
        for entry in history:
            if not isinstance(entry, dict) or entry.get("quick") or "profile" in entry:
                continue
            if entry.get("cpus") != record.get("cpus"):
                continue
            other = entry.get("service")
            if not isinstance(other, dict):
                continue
            if any(
                other.get(key) != service.get(key)
                for key in ("cells", "pods", "requests")
            ):
                continue
            best = other.get("updates_per_sec")
            if isinstance(best, (int, float)):
                prior.append(best)
        if prior:
            best = max(prior)
            if best > 0 and current * SERVICE_GATE_LIMIT < best:
                failures.append(
                    f"service throughput {current:.1f} upd/s is under "
                    f"1/{SERVICE_GATE_LIMIT}x the best prior record "
                    f"{best:.1f} upd/s (machine class cpus={record.get('cpus')})"
                )
    return "; ".join(failures) if failures else None


def main(argv=None) -> int:
    parser = script_parser(__doc__)
    add_quick_flag(parser, "small sizes for smoke runs")
    parser.add_argument(
        "--workers", type=int, default=4, help="pool size for the sweep benchmark"
    )
    parser.add_argument(
        "--no-write", action="store_true", help="do not append to BENCH_sweep.json"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="enable repro.perf and attach the phase breakdown to the record",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the plan-conformance verifier sweep",
    )
    args = parser.parse_args(argv)

    if args.profile:
        perf.enable()
    record = perf_harness.collect(quick=args.quick, workers=args.workers)
    if args.profile:
        record["profile"] = perf.snapshot()
        print(perf.report())

    if not args.no_verify:
        gate = run_gate(
            instance_count=8 if args.quick else 50,
            switch_count=8,
        )
        record["verifier_agrees"] = gate.ok
        print(f"[bench] verifier_agrees={gate.ok}")

    record["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    if args.no_write:
        history = perf_harness.load_history()
    else:
        history = perf_harness.append_record(record)[:-1]
        print(
            f"appended record #{len(history) + 1} to {perf_harness.BENCH_FILE.name} "
            f"(cpus={record['cpus']})"
        )

    failures = []
    sweep = record["sweep"]
    if not sweep["identical_records"]:
        failures.append("parallel sweep records differ from serial records")
    cpus = record["cpus"]
    if cpus >= 2 and sweep["serial_seconds"] > 0:
        slowdown = sweep["parallel_seconds"] / sweep["serial_seconds"]
        if slowdown > SLOWDOWN_LIMIT:
            failures.append(
                f"parallel sweep {slowdown:.2f}x slower than serial on "
                f"{cpus} cores (limit {SLOWDOWN_LIMIT}x)"
            )
    if record.get("verifier_agrees") is False:
        failures.append("plan-conformance verifier disagreed with a planner")
    regression = greedy_regression(record, history)
    if regression:
        failures.append(regression)
    opt_failure = opt_regression(record, history)
    if opt_failure:
        failures.append(opt_failure)
    service_failure = service_regression(record, history)
    if service_failure:
        failures.append(service_failure)
    for failure in failures:
        print(f"BENCH GATE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
