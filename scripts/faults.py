#!/usr/bin/env python3
"""Faults ablation entry point (``make faults``).

Sweeps the fault-severity grid of
:mod:`repro.experiments.faults_ablation`: every scheme (Chronus timed,
order-replacement rounds, two-phase) runs seeded reroute instances under a
deterministic fault plan -- message loss/duplication, apply failures,
crash-stop switches, stragglers, optional clock drift -- through the
resilient executor, and the consistency of every run is judged by the
independent ``repro.validate`` oracle.

Usage::

    python scripts/faults.py                   # default grid, 5 instances/point
    python scripts/faults.py --quick           # 2 instances/point smoke run
    python scripts/faults.py -n 20 -s 12       # denser sweep, 12 switches
    python scripts/faults.py --drift 0.4       # add clock drift beyond sync

Exit status: 0 when the oracle cross-check holds on every run (a clean
verdict never coexists with a dirty fluid plane), 1 otherwise.  Seeds
follow the figures' ``sweep_seed`` contract, so any run reproduces
bit-for-bit anywhere.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.experiments.faults_ablation import (  # noqa: E402
    DEFAULT_SEVERITIES,
    SCHEMES,
    run_faults_ablation,
)
from repro.pipeline.cli import (  # noqa: E402
    add_quick_flag,
    add_quiet_flag,
    finish_progress,
    progress_printer,
    script_parser,
)


def main(argv=None) -> int:
    parser = script_parser(__doc__)
    parser.add_argument(
        "-n",
        "--instances",
        type=int,
        default=5,
        help="seeded instances per (scheme, severity) point (default 5)",
    )
    parser.add_argument(
        "-s",
        "--switches",
        type=int,
        default=8,
        help="network size of every instance (default 8)",
    )
    parser.add_argument(
        "--severities",
        nargs="+",
        type=float,
        default=list(DEFAULT_SEVERITIES),
        help="fault-severity grid (default: 0 0.25 0.5 1)",
    )
    parser.add_argument(
        "--schemes",
        nargs="+",
        default=list(SCHEMES),
        choices=list(SCHEMES),
        help="schemes to ablate (default: all three)",
    )
    parser.add_argument(
        "--base-seed", type=int, default=7, help="base of the sweep_seed contract"
    )
    parser.add_argument(
        "--drift",
        type=float,
        default=0.0,
        help="clock-drift bound in seconds (0 keeps the oracle exact)",
    )
    parser.add_argument(
        "--deadline",
        type=int,
        default=60,
        help="abort deadline in steps after the update starts (default 60)",
    )
    add_quick_flag(parser, "2 instances/point -- the smoke configuration")
    add_quiet_flag(parser)
    args = parser.parse_args(argv)

    instances = 2 if args.quick else args.instances
    total = instances * len(args.severities) * len(args.schemes)
    done = 0
    tick = progress_printer("fault run", quiet=args.quiet)

    def progress(record) -> None:
        nonlocal done
        done += 1
        tick(done, total)

    started = time.monotonic()
    result = run_faults_ablation(
        severities=tuple(args.severities),
        instances_per_point=instances,
        switch_count=args.switches,
        base_seed=args.base_seed,
        schemes=tuple(args.schemes),
        deadline_steps=args.deadline,
        drift_bound=args.drift,
        progress=progress,
    )
    finish_progress(quiet=args.quiet)
    elapsed = time.monotonic() - started
    print(result.render())
    print(f"({elapsed:.1f}s)")
    return 0 if result.oracle_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
