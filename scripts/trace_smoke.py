#!/usr/bin/env python3
"""Trace smoke gate: a pool run's trace reaches the sink, workers and all.

Exercises the trace layer end-to-end (``make trace-smoke``, CI's
``trace-smoke`` job):

1. run a tiny deterministic scenario with ``--workers 2``, the min-work
   probe disabled (``serial_threshold_seconds=0``) and a SQLite sink;
2. query the trace back through :mod:`repro.trace.query` (the same code
   path as ``python -m repro.trace``) and fail unless
   - the run root span and every ``item:<key>`` span are present,
   - the item spans carry **more than one distinct worker pid** (the
     pool-worker merge actually happened; a silent serial fallback is a
     failure),
   - every record's parent id resolves inside the trace (a well-formed
     tree), and
   - each pipeline record's ``trace`` field points at a real span;
3. re-run the same scenario serially with the sink off and fail unless
   ``records.jsonl`` is byte-identical to the traced pool run minus the
   ``trace`` field -- tracing must stay observability-only.

Single-core boxes are the reason for the ``available_cpus`` override
below: the runner (correctly) refuses a pool when there is one usable
CPU, but this gate exists precisely to exercise the pool path, so it
lifts the cap for the duration of the smoke.

Usage::

    python scripts/trace_smoke.py
    python scripts/trace_smoke.py --keep          # keep the temp store

Exit status: 0 when every check holds, 1 otherwise.
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

import repro.runtime.parallel as parallel  # noqa: E402
from repro.pipeline.cli import script_parser  # noqa: E402
from repro.pipeline.context import RunContext  # noqa: E402
from repro.pipeline.runner import run_to_store  # noqa: E402
from repro.pipeline.store import ArtifactStore  # noqa: E402
from repro.trace.query import filter_records, read_trace  # noqa: E402

SCENARIO = "fig9"
OVERRIDES = {"switch_counts": [20, 30], "instances_per_size": 3}
WORKERS = 2


def main(argv=None) -> int:
    parser = script_parser(__doc__)
    parser.add_argument(
        "--keep", action="store_true", help="keep the temporary store"
    )
    args = parser.parse_args(argv)

    # Lift the CPU cap so the pool really forks, whatever the box.
    parallel.available_cpus = lambda: WORKERS

    root = Path(tempfile.mkdtemp(prefix="trace-smoke-"))
    store = ArtifactStore(root=root)
    failures = []
    try:
        traced = run_to_store(
            SCENARIO,
            overrides=OVERRIDES,
            ctx=RunContext(
                workers=WORKERS,
                trace="sqlite",
                serial_threshold_seconds=0,
            ),
            store=store,
            run_id="traced",
        )
        trace_meta = traced.handle.manifest.get("trace") or {}
        trace_path = Path(trace_meta.get("path", ""))
        print(
            f"[smoke] traced pool run: {len(traced.records)} record(s), "
            f"sink -> {trace_path}"
        )
        if not trace_path.is_file():
            failures.append(f"manifest trace path {trace_path} is not a file")
            raise SystemExit(_finish(failures))

        records = read_trace(trace_path)
        spans = {r.span_id: r for r in records if r.kind == "span"}

        roots = [r for r in spans.values() if r.name == "run"]
        if len(roots) != 1:
            failures.append(f"expected exactly one run root span, got {len(roots)}")

        item_spans = filter_records(records, name="item:", kind="span")
        if len(item_spans) != len(traced.records):
            failures.append(
                f"{len(item_spans)} item span(s) for {len(traced.records)} "
                "pipeline record(s)"
            )
        pids = {r.attributes.get("pid") for r in item_spans}
        if len(pids) < 2:
            failures.append(
                f"item spans carry {len(pids)} distinct pid(s) -- the pool "
                "fell back to serial and no worker spans were merged"
            )
        else:
            print(f"[smoke] {len(item_spans)} item span(s) across pids {sorted(pids)}")

        known = set(spans)
        orphans = [r for r in records if r.parent_id and r.parent_id not in known]
        if orphans:
            failures.append(
                f"{len(orphans)} record(s) with unresolved parent ids, "
                f"e.g. {orphans[0].name!r}"
            )

        for record in traced.records:
            link = record.get("trace")
            if not isinstance(link, dict) or link.get("span_id") not in known:
                failures.append(
                    f"record {record.get('key')!r} lacks a resolvable trace link"
                )
                break

        untraced = run_to_store(
            SCENARIO,
            overrides=OVERRIDES,
            ctx=RunContext(),
            store=store,
            run_id="untraced",
        )
        stripped = [
            {k: v for k, v in record.items() if k != "trace"}
            for record in json.loads(
                "[" + ",".join(
                    traced.handle.records_path.read_text().splitlines()
                ) + "]"
            )
        ]
        plain = [
            json.loads(line)
            for line in untraced.handle.records_path.read_text().splitlines()
        ]
        if stripped != plain:
            failures.append(
                "traced records (minus the trace field) differ from the "
                "untraced serial run"
            )
    finally:
        if args.keep:
            print(f"[smoke] store kept at {root}")
        else:
            shutil.rmtree(root, ignore_errors=True)

    return _finish(failures)


def _finish(failures) -> int:
    for failure in failures:
        print(f"TRACE SMOKE FAILURE: {failure}", file=sys.stderr)
    if not failures:
        print(
            "[smoke] OK: pool-worker spans reached the sink and tracing "
            "left the records untouched"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
