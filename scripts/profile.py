#!/usr/bin/env python3
"""One-command phase profile of the greedy scheduler (``make profile``).

Runs the Chronus greedy engine on a paper-scale segmented instance with
the :mod:`repro.perf` registry enabled and prints the hierarchical
wall-clock breakdown (dependency analysis vs. round selection vs. tracker
probes) together with the tracker's hit/miss counters.

Usage::

    python scripts/profile.py                  # 6000 switches (Fig. 10 max)
    python scripts/profile.py --size 4000      # the bench-gate size
    python scripts/profile.py --engine fresh   # profile the reference engine
    python scripts/profile.py --json           # machine-readable snapshot
    python scripts/profile.py --memory         # peak RSS of the stage too

``--memory`` reproduces BENCH_sweep.json's memory column locally: the
stage (instance build + schedule) re-runs in a forked child and its peak
RSS is reported next to the wall-clock breakdown.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.core.greedy import greedy_schedule  # noqa: E402
from repro.core.instance import segmented_instance  # noqa: E402
from repro.perf import measure_peak_rss, perf  # noqa: E402
from repro.pipeline.cli import emit_json, script_parser  # noqa: E402


def _stage(size: int, seed: int, engine: str) -> None:
    """The profiled stage, self-contained for the memory-measurement fork."""
    greedy_schedule(segmented_instance(size, seed=seed), engine=engine)


def main(argv=None) -> int:
    parser = script_parser(__doc__)
    parser.add_argument(
        "--size", type=int, default=6000, help="switches to update (default 6000)"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="instance seed (default: the size, matching the bench harness)",
    )
    parser.add_argument(
        "--engine",
        default="incremental",
        choices=("incremental", "incremental-dict", "fresh"),
        help="greedy engine to profile",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the raw snapshot as JSON"
    )
    parser.add_argument(
        "--memory",
        action="store_true",
        help="also report the stage's peak RSS (forked re-run, see above)",
    )
    args = parser.parse_args(argv)

    seed = args.size if args.seed is None else args.seed
    instance = segmented_instance(args.size, seed=seed)
    perf.enable()
    started = time.perf_counter()
    result = greedy_schedule(instance, engine=args.engine)
    elapsed = time.perf_counter() - started
    print(
        f"greedy[{args.size}] ({args.engine} engine): {elapsed:.3f}s "
        f"feasible={result.feasible} makespan={result.makespan}"
    )
    memory = None
    if args.memory:
        memory = measure_peak_rss(_stage, args.size, seed, args.engine)
        print(
            f"greedy[{args.size}] memory: peak_rss={memory['peak_rss_mb']}MB "
            f"(baseline {memory['baseline_rss_mb']}MB, "
            f"stage delta {memory['delta_mb']}MB)"
        )
    if args.json:
        snapshot = perf.snapshot()
        if memory is not None:
            snapshot["memory"] = memory
        emit_json(snapshot)
    else:
        print(perf.report())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
