#!/usr/bin/env python3
"""Service smoke gate: a burst of update requests through the full loop.

Exercises :mod:`repro.service` end-to-end (``make service-smoke``, CI's
``service-smoke`` job):

1. replay a short seeded burst of requests through the whole service
   (admission, batch merging, greedy planning, verification, resilient
   timed execution on the shared DES plane) on the virtual-time loop;
2. fail unless
   - **every** request reached a terminal status (nothing wedged),
   - every completed update carries a conformant plan (the independent
     :mod:`repro.validate` verifier signed it off),
   - no traffic was black-holed on the shared plane,
   - the summary metrics are present and self-consistent
     (latency percentiles ordered, throughput positive), and
   - a second run of the same seed is **byte-identical** (lockstep);
3. run the registered ``service`` scenario through the pipeline store
   and fail unless its records match a direct cell run.

Usage::

    python scripts/service_smoke.py
    python scripts/service_smoke.py --requests 60 --seed 3

Exit status: 0 when every check holds, 1 otherwise.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.pipeline.cli import script_parser  # noqa: E402
from repro.pipeline.context import RunContext  # noqa: E402
from repro.pipeline.runner import run_to_store  # noqa: E402
from repro.pipeline.store import ArtifactStore, canonical_json  # noqa: E402
from repro.service import ServiceConfig, run_cell  # noqa: E402
from repro.service.requests import TERMINAL  # noqa: E402


def main(argv=None) -> int:
    parser = script_parser(__doc__)
    parser.add_argument("--requests", type=int, default=30, help="burst length")
    parser.add_argument("--pods", type=int, default=5, help="tenant count")
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--keep", action="store_true", help="keep the temporary store"
    )
    args = parser.parse_args(argv)

    failures = []
    config = ServiceConfig(
        pods=args.pods,
        pod_size=6,
        requests=args.requests,
        mean_interarrival=1.5,
        seed=args.seed,
    )
    report = run_cell(config)
    summary = report.summary
    print(
        f"[smoke] {summary['requests']} request(s): "
        f"{summary['completed']} completed, {summary['superseded']} superseded, "
        f"{summary['noop']} noop, {summary['rejected']} rejected, "
        f"{summary['aborted']} aborted across {summary['batches']} batch(es) "
        f"({summary['merged_batches']} merged)"
    )

    non_terminal = [
        r["id"] for r in report.requests if r["status"] not in TERMINAL
    ]
    if non_terminal:
        failures.append(f"request(s) {non_terminal} never reached a terminal status")
    if summary["completed"] < 1:
        failures.append("burst completed no updates at all")
    bad_plans = [
        r["id"]
        for r in report.requests
        if r["status"] == "completed" and r["conformant"] is not True
    ]
    if bad_plans:
        failures.append(f"completed request(s) {bad_plans} lack a conformant plan")
    if not summary["conformant_all"]:
        failures.append("summary reports a non-conformant plan")
    if summary["blackholed"] != 0.0:
        failures.append(f"shared plane black-holed {summary['blackholed']} traffic")

    latency = summary["latency"]
    if latency["p50"] is None or not (
        latency["p50"] <= latency["p95"] <= latency["p99"]
    ):
        failures.append(f"latency percentiles missing or unordered: {latency}")
    if not summary["virtual_updates_per_sec"]:
        failures.append("missing sustained updates/sec metric")
    if summary["queue"]["max"] is None:
        failures.append("missing queue-depth metrics")

    rerun = run_cell(config)
    if canonical_json(report.to_record()) != canonical_json(rerun.to_record()):
        failures.append("second run of the same seed is not byte-identical")
    else:
        print("[smoke] lockstep OK: re-run is byte-identical")

    # The registered scenario must agree with direct cell runs.
    root = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    try:
        run = run_to_store(
            "service",
            overrides={"cells": 1, "pods": 4, "pod_size": 6, "requests": 12},
            ctx=RunContext(),
            store=ArtifactStore(root=root),
            run_id="smoke",
        )
        if len(run.records) != 1:
            failures.append(f"scenario produced {len(run.records)} record(s), not 1")
        else:
            record = run.records[0]
            direct = run_cell(
                ServiceConfig(
                    pods=4,
                    pod_size=6,
                    requests=12,
                    mean_interarrival=2.0,
                    seed=int(record["seed"]),
                )
            ).to_record()
            direct["key"] = record["key"]
            stripped = {k: v for k, v in record.items() if k != "trace"}
            if canonical_json(stripped) != canonical_json(direct):
                failures.append("scenario record differs from a direct cell run")
            else:
                print("[smoke] scenario record matches the direct cell run")
    finally:
        if args.keep:
            print(f"[smoke] store kept at {root}")
        else:
            shutil.rmtree(root, ignore_errors=True)

    for failure in failures:
        print(f"SERVICE SMOKE FAILURE: {failure}", file=sys.stderr)
    if not failures:
        print(
            "[smoke] OK: every request terminal, plans conformant, "
            "metrics present, lockstep holds"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
