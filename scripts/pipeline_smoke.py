#!/usr/bin/env python3
"""Pipeline smoke gate: interrupted-and-resumed equals uninterrupted.

Exercises the scenario pipeline end-to-end on a tiny, fully deterministic
grid (``make pipeline-smoke``, CI's ``pipeline-smoke`` job):

1. run the scenario uninterrupted into run ``full``;
2. run it again with ``--stop-after K`` (the executor raises mid-run and
   leaves the manifest in status ``running`` -- a simulated kill), then
   append a partial line to ``records.jsonl`` to model dying mid-write;
3. resume the interrupted run;
4. fail unless the resumed ``records.jsonl`` is **byte-identical** to the
   uninterrupted one, the resume skipped exactly K records, and both
   manifests agree on the config hash.

Usage::

    python scripts/pipeline_smoke.py                   # fig9 tiny grid
    python scripts/pipeline_smoke.py --scenario fig7 --stop-after 3
    python scripts/pipeline_smoke.py --keep            # keep the temp store

Exit status: 0 when every check holds, 1 otherwise.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.pipeline.cli import script_parser  # noqa: E402
from repro.pipeline.context import RunContext  # noqa: E402
from repro.pipeline.runner import RunInterrupted, run_to_store  # noqa: E402
from repro.pipeline.store import ArtifactStore  # noqa: E402

#: Tiny but multi-record grids, deterministic on any machine (no
#: wall-clock budgets anywhere in the evaluated schemes).
SMOKE_OVERRIDES = {
    "fig9": {"switch_counts": [20, 30], "instances_per_size": 3},
    "fig7": {
        "switch_counts": [10],
        "instances_per_size": 6,
        "opt_budget": 60.0,
        "or_budget": 60.0,
        "opt_node_budget": 20_000,
        "or_node_budget": 20_000,
    },
}


def main(argv=None) -> int:
    parser = script_parser(__doc__)
    parser.add_argument(
        "--scenario",
        default="fig9",
        choices=sorted(SMOKE_OVERRIDES),
        help="scenario to smoke (default fig9: deterministic, seconds)",
    )
    parser.add_argument(
        "--stop-after",
        type=int,
        default=2,
        metavar="K",
        help="records before the simulated kill (default 2)",
    )
    parser.add_argument(
        "--keep", action="store_true", help="keep the temporary store"
    )
    args = parser.parse_args(argv)

    overrides = SMOKE_OVERRIDES[args.scenario]
    root = Path(tempfile.mkdtemp(prefix="pipeline-smoke-"))
    store = ArtifactStore(root=root)
    failures = []
    try:
        full = run_to_store(
            args.scenario,
            overrides=overrides,
            ctx=RunContext(),
            store=store,
            run_id="full",
        )
        print(
            f"[smoke] uninterrupted: {len(full.records)} record(s) "
            f"-> {full.handle.records_path}"
        )

        try:
            run_to_store(
                args.scenario,
                overrides=overrides,
                ctx=RunContext(),
                store=store,
                run_id="interrupted",
                stop_after=args.stop_after,
            )
            failures.append(
                f"stop_after={args.stop_after} did not interrupt the run"
            )
        except RunInterrupted as interrupted:
            print(f"[smoke] {interrupted}")
            # Model a kill mid-write: a dangling partial line.
            with open(interrupted.handle.records_path, "a") as handle:
                handle.write('{"key":"torn-')

        resumed = run_to_store(
            args.scenario,
            ctx=RunContext(),
            store=store,
            run_id="interrupted",
            resume=True,
        )
        print(
            f"[smoke] resumed: skipped {resumed.summary.skipped}, "
            f"emitted {resumed.summary.emitted}"
        )

        full_bytes = full.handle.records_path.read_bytes()
        resumed_bytes = resumed.handle.records_path.read_bytes()
        if full_bytes != resumed_bytes:
            failures.append(
                "resumed records.jsonl differs from the uninterrupted run"
            )
        if resumed.summary.skipped != args.stop_after:
            failures.append(
                f"resume skipped {resumed.summary.skipped} record(s), "
                f"expected {args.stop_after}"
            )
        full_hash = full.handle.manifest["config_hash"]
        resumed_hash = resumed.handle.manifest["config_hash"]
        if full_hash != resumed_hash:
            failures.append(
                f"config hashes diverged: {full_hash} != {resumed_hash}"
            )
        if resumed.handle.manifest["status"] != "complete":
            failures.append(
                f"resumed manifest status is "
                f"{resumed.handle.manifest['status']!r}, not 'complete'"
            )
    finally:
        if args.keep:
            print(f"[smoke] store kept at {root}")
        else:
            shutil.rmtree(root, ignore_errors=True)

    for failure in failures:
        print(f"PIPELINE SMOKE FAILURE: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"[smoke] OK: interrupted-after-{args.stop_after} + resume is "
            "byte-identical to the uninterrupted run"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
